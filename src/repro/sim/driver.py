"""Event-driven protocol execution: the functional DRM under virtual time.

:class:`AsyncClient` performs the real protocol exchanges -- the same
crypto, the same manager handlers as the synchronous
:class:`~repro.core.client.Client` -- but as chained messages over a
:class:`~repro.sim.rpc.VirtualNetwork`.  Every round's latency is then
an *emergent* quantity: request one-way delay + farm queueing/service +
reply one-way delay, plus the client's own compute charged from a
deterministic cost model (:mod:`repro.sim.costs`).

This is the highest-fidelity rig in the repository: unit tests verify
logic, the timing model gives scale, and this driver gives both at
moderate scale.  Used by the virtual-time integration tests and the
`test_bench_rpc_storm` benchmark.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.core.accounts import secure_hash_password
from repro.core.challenge import answer_challenge
from repro.core.protocol import (
    JoinAccept,
    Login1Request,
    Login1Response,
    Login2Request,
    Login2Response,
    Switch1Request,
    Switch2Request,
    Switch2Response,
)
from repro.core.user_manager import ChecksumParams
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.crypto.stream import SymmetricKey
from repro.metrics.collector import LatencyCollector
from repro.sim.costs import (
    OP_CHALLENGE_SIGN,
    OP_JOIN_DECRYPT,
    OP_LOGIN_BLOB,
    FixedCostModel,
)
from repro.sim.rpc import RpcService, VirtualNetwork
from repro.trace.span import Span, Tracer
from repro.util.wire import Decoder


def wire_user_manager(network: VirtualNetwork, manager, address: str, station=None) -> RpcService:
    """Expose a functional User Manager as an RPC service.

    The observed connection address -- what the paper's NetAddr checks
    key on -- is taken from the RPC context, exactly as a real server
    reads the socket peer address.
    """
    service = RpcService(address=address, station=station)
    service.register("login1", lambda payload, ctx: manager.login1(payload, ctx.now))
    service.register(
        "login2",
        lambda payload, ctx: manager.login2(
            payload, observed_addr=ctx.caller_address, now=ctx.now
        ),
    )
    network.attach(service)
    return service


def wire_channel_manager(network: VirtualNetwork, manager, address: str, station=None) -> RpcService:
    """Expose a functional Channel Manager as an RPC service."""
    service = RpcService(address=address, station=station)
    service.register("switch1", lambda payload, ctx: manager.switch1(payload, ctx.now))
    service.register(
        "switch2",
        lambda payload, ctx: manager.switch2(
            payload, observed_addr=ctx.caller_address, now=ctx.now
        ),
    )
    network.attach(service)
    return service


def wire_peer(network: VirtualNetwork, peer, address: Optional[str] = None) -> RpcService:
    """Expose a peer's join admission as an RPC service."""
    service = RpcService(address=address or f"peer://{peer.peer_id}", region=peer.region)
    service.register(
        "join",
        lambda payload, ctx: peer.handle_join(
            payload, observed_addr=ctx.caller_address, now=ctx.now
        ),
    )
    network.attach(service)
    return service


class AsyncClient:
    """A client driving the DRM protocols as virtual-time messages.

    Client-side compute (RSA signing, blob decryption, checksum) runs
    for real, but the virtual delay charged before the next message
    leaves comes from ``cost_model`` -- a deterministic per-operation
    table by default (:class:`~repro.sim.costs.FixedCostModel`), so
    the same seed always yields the same transcript.  Pass
    :class:`~repro.sim.costs.WallClockCostModel` to recover the old
    measured-cost behaviour, or a calibrated table from
    :func:`~repro.sim.costs.calibrated_cost_model`.
    """

    def __init__(
        self,
        network: VirtualNetwork,
        email: str,
        password: str,
        version: str,
        image: bytes,
        net_addr: str,
        region: str,
        drbg: HmacDrbg,
        collector: Optional[LatencyCollector] = None,
        key_bits: int = 512,
        tracer: Optional[Tracer] = None,
        round_timeout: Optional[float] = None,
        cost_model=None,
    ) -> None:
        self._network = network
        self.email = email
        self._shp = secure_hash_password(email, password)
        self.version = version
        self.image = bytes(image)
        self.net_addr = net_addr
        self.region = region
        self._key = generate_keypair(drbg.fork(b"async-client-key"), bits=key_bits)
        self.collector = collector or LatencyCollector()
        self.tracer = tracer
        self.user_ticket = None
        self.channel_ticket = None
        self.peers = ()
        self.errors: List[Exception] = []
        #: Per-round timeout.  When set, a lost request/reply surfaces
        #: as an ``RpcTimeoutError`` to ``on_fail`` instead of hanging
        #: forever -- the hook the resilience layer's retry loop uses.
        self.round_timeout = round_timeout
        #: Virtual cost charged for client-side compute; deterministic
        #: by default so transcripts reproduce bit-for-bit.
        self.cost_model = cost_model if cost_model is not None else FixedCostModel()

    @property
    def public_key(self):
        return self._key.public_key

    # ------------------------------------------------------------------
    # Tracing helpers: spans across async hops are parented explicitly
    # (the callback chain has no ambient stack to inherit from).
    # ------------------------------------------------------------------

    def _open_span(self, name: str, kind: str, parent=None) -> Optional[Span]:
        if self.tracer is None:
            return None
        span = self.tracer.start_span(
            name, now=self._network.sim.now, parent=parent, kind=kind
        )
        span.annotate("client", self.email)
        return span

    def _close_span(
        self, span: Optional[Span], error: Optional[Exception] = None
    ) -> None:
        if span is None:
            return
        if error is not None:
            span.annotate("error", type(error).__name__)
        self.tracer.finish(span, now=self._network.sim.now)

    @staticmethod
    def _ctx(span: Optional[Span]):
        return span.context if span is not None else None

    def _charge_compute(
        self, op: str, fn: Callable[[], None], then: Callable[[], None]
    ) -> None:
        """Run client-side work now; advance virtual time by its *modeled* cost.

        The work itself executes immediately (its result feeds the next
        message), but the virtual delay comes from the cost model, not
        the wall clock -- charging measured ``perf_counter`` durations
        here made event orderings nondeterministic run-to-run.  The
        measured duration is still passed to the model so the opt-in
        wall-clock mode can return it.
        """
        start = time.perf_counter()
        fn()
        measured = time.perf_counter() - start
        cost = self.cost_model.charge(op, measured)
        self._network.sim.schedule(cost, lambda sim: then())

    # ------------------------------------------------------------------
    # Login (two chained exchanges)
    # ------------------------------------------------------------------

    def start_login(
        self,
        um_address: str,
        on_done: Callable[[], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Begin the login flow; callbacks fire in virtual time."""
        sim = self._network.sim
        sent_at = sim.now
        op = self._open_span("LOGIN", kind="op")
        spans = {"round": self._open_span("LOGIN1", kind="round", parent=self._ctx(op))}

        def fail(exc: Exception) -> None:
            self._close_span(spans["round"], error=exc)
            self._close_span(op, error=exc)
            self.errors.append(exc)
            if on_fail is not None:
                on_fail(exc)

        def handle_login1(response: Login1Response) -> None:
            self.collector.record("LOGIN1", sent_at, sim.now - sent_at)
            self._close_span(spans["round"])
            state = {}

            def compute() -> None:
                blob_key = SymmetricKey(material=self._shp[:16])
                plain = blob_key.decrypt(
                    response.encrypted_blob, nonce=response.blob_nonce, aad=b"login1"
                )
                dec = Decoder(plain)
                nonce = dec.get_bytes()
                params = ChecksumParams(
                    salt=dec.get_bytes(), offset_seed=dec.get_u32(), length=dec.get_u32()
                )
                dec.get_f64()
                checksum = params.compute(self.image)
                payload = nonce + checksum + self.version.encode("utf-8")
                state["request"] = Login2Request(
                    email=self.email,
                    client_public_key=self.public_key,
                    token=response.token,
                    nonce=nonce,
                    checksum=checksum,
                    version=self.version,
                    signature=self._key.sign(payload),
                )

            def send_round2() -> None:
                sent2_at = sim.now
                spans["round"] = self._open_span(
                    "LOGIN2", kind="round", parent=self._ctx(op)
                )

                def handle_login2(response2: Login2Response) -> None:
                    self.collector.record("LOGIN2", sent2_at, sim.now - sent2_at)
                    self._close_span(spans["round"])
                    self._close_span(op)
                    self.user_ticket = response2.ticket
                    on_done()

                self._network.call(
                    caller_address=self.net_addr,
                    caller_region=self.region,
                    dst_address=um_address,
                    method="login2",
                    payload=state["request"],
                    on_reply=handle_login2,
                    on_error=fail,
                    timeout=self.round_timeout,
                    trace=self._ctx(spans["round"]),
                )

            self._charge_compute(OP_LOGIN_BLOB, compute, send_round2)

        self._network.call(
            caller_address=self.net_addr,
            caller_region=self.region,
            dst_address=um_address,
            method="login1",
            payload=Login1Request(email=self.email, client_public_key=self.public_key),
            on_reply=handle_login1,
            on_error=fail,
            timeout=self.round_timeout,
            trace=self._ctx(spans["round"]),
        )

    # ------------------------------------------------------------------
    # Channel switch (two chained exchanges)
    # ------------------------------------------------------------------

    def start_switch(
        self,
        cm_address: str,
        channel_id: str,
        on_done: Callable[[Switch2Response], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Begin the switch flow for ``channel_id``."""
        if self.user_ticket is None:
            raise RuntimeError("login first")
        self._start_switch_rounds(
            cm_address,
            op_name="SWITCH",
            round_names=("SWITCH1", "SWITCH2"),
            request1=Switch1Request(
                user_ticket=self.user_ticket, channel_id=channel_id
            ),
            request2_builder=lambda token, signature: Switch2Request(
                user_ticket=self.user_ticket,
                token=token,
                signature=signature,
                channel_id=channel_id,
            ),
            on_done=on_done,
            on_fail=on_fail,
        )

    def start_renewal(
        self,
        cm_address: str,
        on_done: Callable[[Switch2Response], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Begin renewal of the held Channel Ticket (Section IV-D)."""
        if self.user_ticket is None or self.channel_ticket is None:
            raise RuntimeError("switch first")
        expiring = self.channel_ticket
        self._start_switch_rounds(
            cm_address,
            op_name="RENEWAL",
            round_names=("RENEW1", "RENEW2"),
            request1=Switch1Request(
                user_ticket=self.user_ticket, expiring_ticket=expiring
            ),
            request2_builder=lambda token, signature: Switch2Request(
                user_ticket=self.user_ticket,
                token=token,
                signature=signature,
                expiring_ticket=expiring,
            ),
            on_done=on_done,
            on_fail=on_fail,
        )

    def _start_switch_rounds(
        self,
        cm_address: str,
        op_name: str,
        round_names,
        request1: Switch1Request,
        request2_builder,
        on_done: Callable[[Switch2Response], None],
        on_fail: Optional[Callable[[Exception], None]],
    ) -> None:
        """The shared SWITCH1+SWITCH2 exchange (fresh issue or renewal)."""
        sim = self._network.sim
        sent_at = sim.now
        round1_name, round2_name = round_names
        op = self._open_span(op_name, kind="op")
        spans = {
            "round": self._open_span(round1_name, kind="round", parent=self._ctx(op))
        }

        def fail(exc: Exception) -> None:
            self._close_span(spans["round"], error=exc)
            self._close_span(op, error=exc)
            self.errors.append(exc)
            if on_fail is not None:
                on_fail(exc)

        def handle_switch1(response1) -> None:
            self.collector.record(round1_name, sent_at, sim.now - sent_at)
            self._close_span(spans["round"])
            state = {}

            def compute() -> None:
                state["signature"] = answer_challenge(response1.token, self._key)

            def send_round2() -> None:
                sent2_at = sim.now
                spans["round"] = self._open_span(
                    round2_name, kind="round", parent=self._ctx(op)
                )

                def handle_switch2(response2: Switch2Response) -> None:
                    self.collector.record(round2_name, sent2_at, sim.now - sent2_at)
                    self._close_span(spans["round"])
                    self._close_span(op)
                    self.channel_ticket = response2.ticket
                    self.peers = response2.peers
                    on_done(response2)

                self._network.call(
                    caller_address=self.net_addr,
                    caller_region=self.region,
                    dst_address=cm_address,
                    method="switch2",
                    payload=request2_builder(response1.token, state["signature"]),
                    on_reply=handle_switch2,
                    on_error=fail,
                    timeout=self.round_timeout,
                    trace=self._ctx(spans["round"]),
                )

            self._charge_compute(OP_CHALLENGE_SIGN, compute, send_round2)

        self._network.call(
            caller_address=self.net_addr,
            caller_region=self.region,
            dst_address=cm_address,
            method="switch1",
            payload=request1,
            on_reply=handle_switch1,
            on_error=fail,
            timeout=self.round_timeout,
            trace=self._ctx(spans["round"]),
        )

    # ------------------------------------------------------------------
    # Peer join (single exchange)
    # ------------------------------------------------------------------

    def start_join(
        self,
        peer_address: str,
        on_done: Callable[[JoinAccept], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Begin the join exchange with one target peer."""
        sim = self._network.sim
        if self.channel_ticket is None:
            raise RuntimeError("switch first")
        sent_at = sim.now
        from repro.core.protocol import JoinReject, JoinRequest
        from repro.errors import CapacityError

        op = self._open_span("JOIN", kind="op")
        spans = {"round": self._open_span("JOIN1", kind="round", parent=self._ctx(op))}

        def fail(exc: Exception) -> None:
            self._close_span(spans["round"], error=exc)
            self._close_span(op, error=exc)
            self.errors.append(exc)
            if on_fail is not None:
                on_fail(exc)

        def handle_join(result) -> None:
            self.collector.record("JOIN", sent_at, sim.now - sent_at)
            if isinstance(result, JoinReject):
                fail(CapacityError(result.reason))
                return
            self._close_span(spans["round"])
            # Decrypt the session key (client compute), then done.
            state = {}

            def compute() -> None:
                state["session"] = SymmetricKey(
                    material=self._key.decrypt(result.encrypted_session_key)
                )

            def finish() -> None:
                self._close_span(op)
                on_done(result)

            self._charge_compute(OP_JOIN_DECRYPT, compute, finish)

        self._network.call(
            caller_address=self.net_addr,
            caller_region=self.region,
            dst_address=peer_address,
            method="join",
            payload=JoinRequest(channel_ticket=self.channel_ticket),
            on_reply=handle_join,
            on_error=fail,
            timeout=self.round_timeout,
            trace=self._ctx(spans["round"]),
        )

"""Wide-area latency model between clients, managers, and peers.

Protocol-round latency in the production measurement (Figs. 5 and 6)
is dominated by WAN round-trip time plus server service time.  This
module supplies the WAN half: per-region-pair base RTTs with lognormal
jitter and an optional tail of slow paths (modelling congested access
links, which give the CDFs in Fig. 6 their long upper tails past the
~80th percentile).

The model is intentionally load-*independent* -- the Internet does not
slow down because one streaming service has more viewers -- which is
precisely the structural reason the paper's latencies decorrelate from
concurrent user count.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Tuple


@dataclass(frozen=True)
class RegionRtt:
    """Base RTT parameters between a client region and a server site.

    ``base_rtt`` is the median round trip in seconds; ``sigma`` is the
    lognormal shape parameter for jitter; ``slow_path_prob`` is the
    probability a request crosses a congested path that multiplies the
    RTT by ``slow_path_factor``.
    """

    base_rtt: float
    sigma: float = 0.35
    slow_path_prob: float = 0.04
    slow_path_factor: float = 6.0


DEFAULT_RTT = RegionRtt(base_rtt=0.060)


class LatencyModel:
    """Samples request round-trip latencies between regions and sites.

    Parameters
    ----------
    rng:
        Model-local random source.
    table:
        Mapping of ``(client_region, server_site)`` to :class:`RegionRtt`.
        Missing pairs fall back to ``default``.
    """

    def __init__(
        self,
        rng: random.Random,
        table: Dict[Tuple[str, str], RegionRtt] = None,
        default: RegionRtt = DEFAULT_RTT,
    ) -> None:
        self._rng = rng
        self._table = dict(table or {})
        self._default = default

    def params(self, client_region: str, server_site: str) -> RegionRtt:
        """Look up the RTT parameters for a region/site pair."""
        return self._table.get((client_region, server_site), self._default)

    def sample_rtt(self, client_region: str, server_site: str) -> float:
        """Sample one round-trip time in seconds.

        Lognormal jitter around the base RTT, with a small probability
        of landing on a slow path.  Always strictly positive.
        """
        p = self.params(client_region, server_site)
        jitter = self._rng.lognormvariate(0.0, p.sigma)
        rtt = p.base_rtt * jitter
        if self._rng.random() < p.slow_path_prob:
            rtt *= p.slow_path_factor * (0.5 + self._rng.random())
        return rtt

    def sample_one_way(self, client_region: str, server_site: str) -> float:
        """Sample a one-way delay (half a sampled RTT)."""
        return self.sample_rtt(client_region, server_site) / 2.0


def zattoo_like_rtt_table() -> Dict[Tuple[str, str], RegionRtt]:
    """An RTT table shaped like a European deployment.

    The production system served mostly European regions from central
    European data centres; transcontinental clients (roaming users)
    see higher base RTTs.  Region names follow :mod:`repro.geo`.
    """
    table: Dict[Tuple[str, str], RegionRtt] = {}
    site = "dc-eu"
    # 2008-era consumer access links: DSL/cable last miles dominate the
    # RTT, so even intra-European paths run ~100 ms with heavy jitter.
    european = {"CH": 0.080, "DE": 0.090, "FR": 0.100, "ES": 0.120, "UK": 0.100, "DK": 0.110}
    for region, rtt in european.items():
        table[(region, site)] = RegionRtt(base_rtt=rtt, sigma=0.50, slow_path_prob=0.08, slow_path_factor=8.0)
    table[("US", site)] = RegionRtt(base_rtt=0.200, sigma=0.55, slow_path_prob=0.08, slow_path_factor=8.0)
    table[("ASIA", site)] = RegionRtt(base_rtt=0.300, sigma=0.60, slow_path_prob=0.08, slow_path_factor=8.0)
    return table


def peer_rtt(rng: random.Random, same_region: bool) -> float:
    """Sample an RTT between two *peers* (used by the JOIN protocol).

    Peer-to-peer paths are more variable than client-to-datacentre
    paths: residential uplinks add queueing, and inter-region pairs
    traverse longer routes.  Values are seconds.
    """
    base = 0.060 if same_region else 0.140
    jitter = rng.lognormvariate(0.0, 0.55)
    rtt = base * jitter
    if rng.random() < 0.08:
        rtt *= 6.0 * (0.5 + rng.random())
    return rtt


def transmission_delay(size_bytes: int, bandwidth_bps: float) -> float:
    """Serialization delay for ``size_bytes`` at ``bandwidth_bps``.

    Protocol messages are small (a ticket is under a kilobyte) so this
    term is tiny, but modelling it keeps message sizes honest.
    """
    if bandwidth_bps <= 0:
        raise ValueError("bandwidth must be positive")
    return (size_bytes * 8.0) / bandwidth_bps

"""Discrete-event simulation substrate.

The paper evaluates its DRM on a production network; we cannot, so we
reproduce the *mechanisms* that produce its results inside a
deterministic discrete-event simulator:

* :mod:`repro.sim.engine` -- the event loop and virtual clock;
* :mod:`repro.sim.station` -- multi-server FIFO service stations
  modelling stateless manager farms (User Manager, Channel Manager)
  and peers;
* :mod:`repro.sim.network` -- a wide-area latency model (per-region
  base RTTs, lognormal jitter, loss) between clients and
  infrastructure.

The DRM *logic* itself lives in :mod:`repro.core` and is exercised
functionally (direct calls) by tests; the simulator adds the timing
dimension for the scalability experiments (Figs. 5 and 6).
"""

from repro.sim.engine import Simulator, Event
from repro.sim.station import ServiceStation, ServiceStats
from repro.sim.network import LatencyModel, RegionRtt

__all__ = [
    "Simulator",
    "Event",
    "ServiceStation",
    "ServiceStats",
    "LatencyModel",
    "RegionRtt",
]

"""Multi-server FIFO service stations: the manager-farm model.

Section V of the paper argues that because ticket issuance is *atomic
and stateless*, a "single logical" User Manager or Channel Manager can
be realized as a farm of servers behind one name and keypair, and that
this is what keeps protocol latency flat as concurrent users grow.

:class:`ServiceStation` models exactly that: ``n_servers`` identical
servers, a shared FIFO queue, and per-request service times drawn from
a caller-supplied distribution (typically exponential around a mean
calibrated from microbenchmarks of the real crypto operations in
:mod:`repro.core`).  The station records every request's sojourn time
(queue wait + service), which the experiments combine with the WAN
latency model to produce end-to-end protocol-round latencies.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Simulator

CompletionCallback = Callable[[Simulator, float], None]


@dataclass
class ServiceStats:
    """Aggregate statistics kept by a station."""

    arrivals: int = 0
    completions: int = 0
    total_sojourn: float = 0.0
    max_queue_len: int = 0
    busy_time: float = 0.0

    @property
    def mean_sojourn(self) -> float:
        """Mean time from arrival to completion, 0.0 if nothing completed."""
        if self.completions == 0:
            return 0.0
        return self.total_sojourn / self.completions


@dataclass
class _QueuedRequest:
    arrival_time: float
    service_time: float
    on_complete: Optional[CompletionCallback]


class ServiceStation:
    """An ``n``-server FIFO queue with sampled service times.

    Parameters
    ----------
    sim:
        The event engine this station schedules on.
    n_servers:
        Number of identical servers in the farm.
    mean_service_time:
        Mean of the default exponential service-time distribution, in
        seconds.  Calibrate this from microbenchmarks of the real
        request handler (see ``repro.experiments.calibration``).
    rng:
        Station-local random source; keeping it local preserves
        determinism when stations are added or removed.
    name:
        Label used in error messages and reports.
    """

    def __init__(
        self,
        sim: Simulator,
        n_servers: int,
        mean_service_time: float,
        rng: random.Random,
        name: str = "station",
    ) -> None:
        if n_servers < 1:
            raise SimulationError("a station needs at least one server")
        if mean_service_time <= 0:
            raise SimulationError("mean service time must be positive")
        self.sim = sim
        self.name = name
        self.n_servers = n_servers
        self.mean_service_time = mean_service_time
        self._rng = rng
        self._busy = 0
        self._queue: Deque[_QueuedRequest] = deque()
        self.stats = ServiceStats()
        self.sojourn_samples: List[Tuple[float, float]] = []
        self.record_samples = True
        #: Queue-wait and service-time split of the request whose
        #: completion callback is currently firing.  The RPC layer
        #: reads these inside ``on_complete`` to attribute time to the
        #: in-flight trace span (valid because the engine is
        #: single-threaded and callbacks run to completion).
        self.last_wait = 0.0
        self.last_service = 0.0

    def sample_service_time(self) -> float:
        """Draw one service time; exponential by default.

        Subclasses or tests may override for deterministic service.
        """
        return self._rng.expovariate(1.0 / self.mean_service_time)

    @property
    def queue_length(self) -> int:
        """Requests waiting (not yet in service)."""
        return len(self._queue)

    @property
    def busy_servers(self) -> int:
        """Servers currently serving a request."""
        return self._busy

    def submit(
        self,
        on_complete: Optional[CompletionCallback] = None,
        service_time: Optional[float] = None,
    ) -> None:
        """Submit a request; ``on_complete(sim, sojourn)`` fires when done."""
        request = _QueuedRequest(
            arrival_time=self.sim.now,
            service_time=(
                service_time if service_time is not None else self.sample_service_time()
            ),
            on_complete=on_complete,
        )
        self.stats.arrivals += 1
        if self._busy < self.n_servers:
            self._start(request)
        else:
            self._queue.append(request)
            if len(self._queue) > self.stats.max_queue_len:
                self.stats.max_queue_len = len(self._queue)

    def _start(self, request: _QueuedRequest) -> None:
        self._busy += 1
        self.stats.busy_time += request.service_time

        def finish(sim: Simulator) -> None:
            self._busy -= 1
            sojourn = sim.now - request.arrival_time
            self.stats.completions += 1
            self.stats.total_sojourn += sojourn
            if self.record_samples:
                self.sojourn_samples.append((request.arrival_time, sojourn))
            self.last_service = request.service_time
            self.last_wait = max(0.0, sojourn - request.service_time)
            if request.on_complete is not None:
                request.on_complete(sim, sojourn)
            if self._queue:
                self._start(self._queue.popleft())

        self.sim.schedule(request.service_time, finish)

    def utilization(self, horizon: float) -> float:
        """Fraction of aggregate server capacity used over ``horizon`` seconds."""
        if horizon <= 0:
            return 0.0
        return self.stats.busy_time / (self.n_servers * horizon)

"""The discrete-event engine: a virtual clock and an event heap.

Design notes
------------
* Events are ordered by ``(time, sequence)``; the monotone sequence
  number makes simultaneous events FIFO and the whole run
  deterministic -- two runs with the same seed produce identical
  traces.
* The engine never consults the wall clock.  Time is a float in
  seconds from simulation start; experiments map it onto the paper's
  "hour of day" axis themselves.
* Callbacks receive the simulator so they can schedule follow-ups;
  exceptions propagate out of :meth:`Simulator.run` -- a simulation
  bug should crash loudly, not corrupt results.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError

Callback = Callable[["Simulator"], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering key is ``(time, seq)``."""

    time: float
    seq: int
    callback: Callback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class Simulator:
    """A minimal, fast discrete-event simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.schedule(2.0, lambda s: fired.append(s.now))
    >>> sim.run()
    >>> fired
    [2.0]
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[Event] = []
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callback) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callback) -> Event:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when} before current time {self._now}"
            )
        event = Event(time=when, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events in order until the heap drains.

        ``until`` stops the run once the next event would be later than
        that time (the clock is advanced to ``until``).  ``max_events``
        is a runaway-loop backstop for tests.
        """
        if self._running:
            raise SimulationError("run() re-entered; the engine is not reentrant")
        self._running = True
        processed = 0
        try:
            while self._heap:
                if max_events is not None and processed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                event = self._heap[0]
                if until is not None and event.time > until:
                    self._now = until
                    return
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback(self)
                processed += 1
                self.events_processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

"""Chaos scenario suite: injected failures vs. the resilience layer.

Each scenario builds one :class:`ChaosRig` -- a replicated deployment
(UM and CM farms with one failover replica each) serving a fleet of
:class:`~repro.resilience.client.ResilientAsyncClient` viewers over the
virtual network -- injects a failure pattern through the
:class:`~repro.sim.faults.FaultInjector`, runs to the horizon, and
checks the suite's invariants:

* **no entitled viewer permanently stuck** -- every client holds a
  Channel Ticket valid past the horizon when the run ends;
* **no double-location violation** -- the shared viewing log passes
  :func:`~repro.sim.faults.single_location_violations` even though
  renewals migrated across farm instances mid-fault;
* **zero-interruption survival** -- at least ``min_uninterrupted`` of
  the clients holding valid tickets at fault onset ride out the outage
  in degraded mode without playback ever stopping;
* **counter consistency** -- the shared
  :class:`~repro.resilience.counters.ResilienceCounters` agree with the
  per-client tallies and with each other (every transport failure is
  answered by exactly one retry or give-up, breakers close at most as
  often as they open, degraded entries balance exits);
* **observability** -- injected faults leave ``kind="resilience"``
  spans (RETRY / FAILOVER / DEGRADED.*) in the tracer.

Timing shape (defaults): Channel Tickets live 300 s and clients renew
60 s early, so with kickoffs at ``t = i`` the renewal storm crosses
t in [241, 249) and tickets expire near t in [301, 309) -- fault windows
around t = 235..330 therefore hit every client mid-renewal while its
ticket is still valid, which is exactly the regime degraded mode is
for.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Dict, List, Optional

from repro.crypto.drbg import HmacDrbg
from repro.deployment import Deployment
from repro.metrics.reporting import format_table
from repro.resilience.client import ResilientAsyncClient
from repro.resilience.retry import RetryPolicy
from repro.sim.driver import wire_channel_manager, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, single_location_violations
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork
from repro.sim.station import ServiceStation
from repro.trace.span import Tracer

UM0, UM1 = "rpc://um0", "rpc://um1"
CM0, CM1 = "rpc://cm0", "rpc://cm1"


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs shared by every scenario (see module docstring for the
    timing shape they produce)."""

    seed: int = 11
    clients: int = 8
    horizon: float = 700.0
    channel: str = "chaos"
    ticket_lifetime: float = 300.0
    round_timeout: float = 8.0
    renew_lead: float = 60.0
    retry_base: float = 2.0
    retry_multiplier: float = 2.0
    retry_cap: float = 60.0
    retry_attempts: int = 8
    breaker_threshold: int = 3
    breaker_reset: float = 30.0
    kickoff_stagger: float = 1.0
    #: Minimum fraction of fault-time-entitled clients that must see
    #: zero playback interruption (the acceptance bar is 0.95).
    min_uninterrupted: float = 0.95


@dataclass
class ClientOutcome:
    """One viewer's end-of-run tally."""

    email: str
    retries: int
    giveups: int
    failovers: int
    degraded_seconds: float
    interruptions: int
    interruption_seconds: float
    converged: bool
    ticket_expires_at: Optional[float]


@dataclass
class ScenarioResult:
    """Everything a chaos run produces, JSON-serializable."""

    name: str
    passed: bool
    violations: List[str]
    horizon: float
    fault_events: List[tuple]
    outcomes: List[ClientOutcome]
    counters: Dict[str, float]
    resilience_spans: Dict[str, int]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "violations": list(self.violations),
            "horizon": self.horizon,
            "fault_events": [list(e) for e in self.fault_events],
            "outcomes": [asdict(o) for o in self.outcomes],
            "counters": dict(self.counters),
            "resilience_spans": dict(self.resilience_spans),
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioResult":
        return ScenarioResult(
            name=data["name"],
            passed=data["passed"],
            violations=list(data["violations"]),
            horizon=data["horizon"],
            fault_events=[tuple(e) for e in data["fault_events"]],
            outcomes=[ClientOutcome(**o) for o in data["outcomes"]],
            counters=dict(data["counters"]),
            resilience_spans=dict(data["resilience_spans"]),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2)


def load_result(path: str) -> ScenarioResult:
    with open(path, "r", encoding="utf-8") as fh:
        return ScenarioResult.from_dict(json.load(fh))


class ChaosRig:
    """A replicated deployment + resilient fleet + fault injector."""

    def __init__(self, config: ChaosConfig) -> None:
        self.config = config
        deployment = Deployment(
            seed=config.seed, channel_ticket_lifetime=config.ticket_lifetime
        )
        deployment.add_free_channel(config.channel, regions=["CH"])
        deployment.add_user_manager_replicas("domain-0", 1)
        deployment.add_channel_manager_replicas("default", 1)
        self.deployment = deployment
        self.primary_cm = deployment.channel_managers["default"]
        self.replica_cm = deployment.cm_replicas["default"][0]

        self.sim = Simulator()
        self.tracer = Tracer(clock=lambda: self.sim.now)
        deployment.enable_tracing(self.tracer)

        rng = random.Random(config.seed)
        latency = LatencyModel(
            random.Random(rng.randrange(2**63)),
            table={
                ("CH", "dc"): RegionRtt(
                    base_rtt=0.08, sigma=0.005, slow_path_prob=0.0
                )
            },
        )
        self.network = VirtualNetwork(
            self.sim, latency, random.Random(rng.randrange(2**63))
        )
        self.network.tracer = self.tracer
        self.stations: Dict[str, ServiceStation] = {}
        for name in ("um0", "um1", "cm0", "cm1"):
            self.stations[name] = ServiceStation(
                self.sim, 2, 0.005, random.Random(rng.randrange(2**63)), name=name
            )
        wire_user_manager(
            self.network, deployment.user_managers["domain-0"], UM0,
            station=self.stations["um0"],
        )
        wire_user_manager(
            self.network, deployment.um_replicas["domain-0"][0], UM1,
            station=self.stations["um1"],
        )
        wire_channel_manager(
            self.network, self.primary_cm, CM0, station=self.stations["cm0"]
        )
        wire_channel_manager(
            self.network, self.replica_cm, CM1, station=self.stations["cm1"]
        )

        retry = RetryPolicy(
            base_delay=config.retry_base,
            multiplier=config.retry_multiplier,
            max_delay=config.retry_cap,
            max_attempts=config.retry_attempts,
        )
        self.fleet: List[ResilientAsyncClient] = []
        for index in range(config.clients):
            email = f"chaos{index}@example.org"
            deployment.accounts.register(email, "pw")
            viewer = ResilientAsyncClient(
                network=self.network,
                email=email,
                password="pw",
                version=deployment.client_version,
                image=deployment.client_image,
                net_addr=deployment.geo.random_address("CH", deployment.rng),
                region="CH",
                drbg=HmacDrbg(email.encode(), b"chaos"),
                tracer=self.tracer,
                um_addresses=[UM0, UM1],
                cm_addresses=[CM0, CM1],
                retry=retry,
                counters=deployment.resilience,
                rng=random.Random(rng.randrange(2**63)),
                breaker_threshold=config.breaker_threshold,
                breaker_reset=config.breaker_reset,
                renew_lead=config.renew_lead,
                round_timeout=config.round_timeout,
            )
            self.fleet.append(viewer)
            self.sim.schedule(
                config.kickoff_stagger * index,
                lambda _sim, v=viewer: v.watch(config.channel),
            )
        self.injector = FaultInjector(self.network)

    # ------------------------------------------------------------------

    def client_addresses(self) -> List[str]:
        return [viewer.net_addr for viewer in self.fleet]

    def run(self, name: str, extra_violations: Callable[["ChaosRig"], List[str]] = None) -> ScenarioResult:
        """Run to the horizon, flush accounting, check invariants."""
        config = self.config
        self.sim.run(until=config.horizon)
        for viewer in self.fleet:
            viewer.finalize(config.horizon)

        outcomes = [
            ClientOutcome(
                email=v.email,
                retries=v.retries,
                giveups=v.giveups,
                failovers=v.failovers,
                degraded_seconds=v.degraded_seconds,
                interruptions=v.interruptions,
                interruption_seconds=v.interruption_seconds,
                converged=(
                    v.channel_ticket is not None
                    and v.channel_ticket.expire_time > config.horizon
                ),
                ticket_expires_at=(
                    v.channel_ticket.expire_time
                    if v.channel_ticket is not None
                    else None
                ),
            )
            for v in self.fleet
        ]
        violations = self._check_invariants(outcomes)
        if extra_violations is not None:
            violations.extend(extra_violations(self))
        span_counts: Dict[str, int] = {}
        for span in self.tracer.spans:
            if span.kind == "resilience":
                span_counts[span.name] = span_counts.get(span.name, 0) + 1
        return ScenarioResult(
            name=name,
            passed=not violations,
            violations=violations,
            horizon=config.horizon,
            fault_events=list(self.injector.events),
            outcomes=outcomes,
            counters=self.deployment.resilience.snapshot(),
            resilience_spans=span_counts,
        )

    def _check_invariants(self, outcomes: List[ClientOutcome]) -> List[str]:
        violations: List[str] = []
        counters = self.deployment.resilience

        # One viewing location per account, across every farm instance
        # (the log is shared by reference; either handle works).
        violations.extend(single_location_violations(self.primary_cm.viewing_log()))

        # No entitled viewer permanently stuck.
        for outcome in outcomes:
            if not outcome.converged:
                violations.append(
                    f"{outcome.email}: not reconverged by the horizon "
                    f"(ticket expires at {outcome.ticket_expires_at})"
                )

        # Zero-interruption survival among clients entitled at fault
        # onset (ticket issued before, expiring after the first fault).
        if self.injector.events:
            onset = min(when for when, _kind, _target in self.injector.events)
            eligible = [
                v for v in self.fleet
                if v.channel_ticket is not None
                and any(
                    s.name == "SWITCH" and s.start < onset
                    for s in self.tracer.spans
                    if s.annotations.get("client") == v.email
                )
            ]
            if eligible:
                unhurt = sum(1 for v in eligible if v.interruptions == 0)
                fraction = unhurt / len(eligible)
                if fraction < self.config.min_uninterrupted:
                    violations.append(
                        f"only {fraction:.0%} of {len(eligible)} entitled "
                        f"clients survived without interruption "
                        f"(need {self.config.min_uninterrupted:.0%})"
                    )

        # Counter consistency: shared block vs. per-client tallies.
        for counter, attr in (
            (counters.retries, "retries"),
            (counters.giveups, "giveups"),
            (counters.failovers, "failovers"),
            (counters.playback_interruptions, "interruptions"),
        ):
            total = sum(getattr(v, attr) for v in self.fleet)
            if counter != total:
                violations.append(
                    f"counter {attr}: shared block says {counter}, "
                    f"clients sum to {total}"
                )
        failures = counters.timeouts + counters.drops + counters.pool_exhausted
        answers = counters.retries + counters.giveups
        if failures != answers:
            violations.append(
                f"{failures} transport failures but {answers} retry/give-up "
                f"responses -- a failure was double-counted or dropped"
            )
        if counters.breaker_opens < counters.breaker_closes:
            violations.append(
                f"breaker closed {counters.breaker_closes} times but only "
                f"opened {counters.breaker_opens}"
            )
        if counters.degraded_entries != counters.degraded_exits:
            violations.append(
                f"degraded entries ({counters.degraded_entries}) != exits "
                f"({counters.degraded_exits}) after finalize"
            )

        # Faults must be observable in the trace.
        if self.injector.events:
            if counters.retries == 0:
                violations.append("faults injected but no retries recorded")
            if not any(s.kind == "resilience" for s in self.tracer.spans):
                violations.append(
                    "faults injected but no resilience spans recorded"
                )
        return violations


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def manager_crash_mid_storm(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """The acceptance scenario: the primary CM dies during the renewal
    storm and stays dead past every ticket's expiry.

    Every client times out on ``cm0``, trips its breaker, and fails
    over to ``cm1`` -- which shares the viewing log, so renewals
    continue the same viewing location.  After ``cm0`` recovers, the
    next renewal wave's half-open probes re-close its breakers.
    """
    config = config or ChaosConfig()
    rig = ChaosRig(config)
    rig.injector.down_at(235.0, CM0)
    rig.injector.up_at(330.0, CM0)
    return rig.run("manager_crash_mid_storm")


def rolling_restarts(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """Maintenance reboots: each farm instance restarts in turn, never
    both at once.  A re-login wave crosses the UM restarts; the renewal
    storm crosses the CM restarts."""
    config = replace(config or ChaosConfig(), round_timeout=5.0)
    rig = ChaosRig(config)
    rig.injector.down_at(60.0, UM0)
    rig.injector.up_at(90.0, UM0)
    rig.injector.down_at(100.0, UM1)
    rig.injector.up_at(130.0, UM1)
    rig.injector.down_at(235.0, CM0)
    rig.injector.up_at(275.0, CM0)
    rig.injector.down_at(280.0, CM1)
    rig.injector.up_at(310.0, CM1)
    for index, viewer in enumerate(rig.fleet):
        rig.sim.schedule(
            65.0 + config.kickoff_stagger * index,
            lambda _sim, v=viewer: v.start_resilient_login(lambda: None),
        )
    return rig.run("rolling_restarts")


def partition_cm_farm(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """The WAN between the viewers and the whole CM farm goes dark for
    27 s across the renewal storm.  No replica helps -- both are
    unreachable -- so every client simply degrades and retries until
    the partition heals; breakers should mostly stay closed (two
    failures is below the trip threshold)."""
    config = config or ChaosConfig()
    rig = ChaosRig(config)
    rig.injector.partition_at(235.0, rig.client_addresses(), [CM0, CM1])
    rig.injector.heal_at(262.0)
    return rig.run("partition_cm_farm")


def slow_station_brownout(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """The primary CM doesn't die -- its farm goes slow (1000x service
    time), the realistic gray failure.  Requests queue past the round
    timeout, which the client cannot distinguish from loss: breakers
    trip on the timeouts and the fleet drains to the replica."""
    config = config or ChaosConfig()
    rig = ChaosRig(config)
    station = rig.stations["cm0"]
    rig.injector.brownout_at(230.0, station, 1000.0)
    rig.injector.restore_at(290.0, station, 1000.0)
    return rig.run("slow_station_brownout")


def replica_flap(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """The primary CM flaps -- 6 s down, 6 s up -- through the renewal
    storm.  Clients whose attempts straddle down-windows retry and may
    fail over; the healthy replica backstops everyone."""
    config = config or ChaosConfig()
    rig = ChaosRig(config)
    rig.injector.flap(CM0, start=236.0, stop=278.0, period=6.0)
    return rig.run("replica_flap")


def shard_killed_mid_resharding(config: Optional[ChaosConfig] = None) -> ScenarioResult:
    """A UM shard being resharded *in* dies halfway through the range move.

    A sharded deployment with live viewers stands up a new
    Authentication Domain and starts migrating ~1/N of the users onto
    it.  Mid-copy, an in-flight renewal for a frozen (moving) user is
    deferred, and then the migration *target* crashes.  Acceptance:

    * the directory never points at a shard missing the named key's
      WAL state -- not mid-copy, not after rollback, not after resume;
    * the one-viewing-location invariant holds throughout;
    * the migration rolls back cleanly (freezes lifted, deferred
      renewal replayed against the old owner, directory unchanged) and
      *resumes* to completion once the target recovers;
    * post-cutover, every moved viewer renews against the new owner --
      viewing-history continuity across the migration.
    """
    from repro.errors import ShardFrozenError
    from repro.sharding import MigrationAborted, directory_state_violations

    config = config or ChaosConfig()
    violations: List[str] = []
    fault_events: List[tuple] = []

    deployment = Deployment(seed=config.seed, n_domains=2, partitions=("default",))
    deployment.enable_durability()  # memory-backed WALs survive the crash
    deployment.add_free_channel(config.channel, regions=["CH"], now=0.0)
    runtime = deployment.enable_sharding()

    clients = []
    for index in range(config.clients):
        client = deployment.create_client(
            f"viewer{index}@example.org", f"pw{index}", region="CH"
        )
        client.login(now=float(index))
        client.switch_channel(config.channel, now=float(index) + 0.5)
        clients.append(client)

    # Stand up the migration target (what add_user_manager_shards does,
    # unrolled so the failure can be injected mid-execute).
    shard_index = deployment._next_domain_index
    deployment._next_domain_index += 1
    domain = f"domain-{shard_index}"
    deployment._spawn_user_manager_shard(domain, shard_index)
    runtime.attach_user_shard(domain)
    runtime.viewing.partition(domain).attach_store(
        deployment._make_store(f"viewing-{domain}")
    )
    plan = runtime.coordinator.plan_add_user_shard(domain)
    total_moves = len(plan.moved) + len(plan.moved_user_ids)
    if total_moves == 0:
        violations.append("reshard plan moved no keys; nothing to test")

    # Channel Tickets issued near t=0 with the default 900 s lifetime
    # renew inside [expiry-120, expiry]; t=800 lands in every window.
    renew_at, replay_at = 800.0, 805.0
    deferred: List[str] = []

    def failpoint(copied: int) -> None:
        if copied != max(1, total_moves // 2):
            return
        # The renewal storm crosses the migration: frozen (moving)
        # users are refused with ShardFrozenError and parked at the
        # coordinator; everyone else renews normally mid-migration.
        for client in clients:
            try:
                client.renew_channel_ticket(now=renew_at)
            except ShardFrozenError:
                deferred.append(client.email)
                runtime.coordinator.defer(
                    lambda c=client: c.renew_channel_ticket(now=replay_at)
                )
        mid_violations = directory_state_violations(deployment, runtime)
        if mid_violations:
            violations.extend(f"mid-copy: {v}" for v in mid_violations)
        fault_events.append((renew_at, "crash", f"um://{domain}"))
        deployment.crash_user_manager(domain)

    try:
        runtime.coordinator.execute(plan, failpoint=failpoint, now=renew_at)
        violations.append("migration completed despite target crash")
    except MigrationAborted:
        pass
    if not deferred:
        violations.append("no renewal was deferred by the freeze")
    if plan.state != "rolled_back":
        violations.append(f"expected rollback, plan is {plan.state!r}")
    violations.extend(
        f"post-rollback: {v}" for v in directory_state_violations(deployment, runtime)
    )
    violations.extend(single_location_violations(runtime.viewing.combined_log()))
    if runtime.user_directory.frozen_keys():
        violations.append("user-directory freeze leaked past rollback")
    if runtime.viewing.frozen_users():
        violations.append("viewing freeze leaked past rollback")
    if runtime.counters.replayed_operations < len(deferred):
        violations.append("deferred renewals were not replayed on rollback")

    # The target recovers from its WAL; the migration resumes and
    # completes (every copy step is an upsert, so the partial state the
    # dead shard retained is reconciled, not duplicated).
    fault_events.append((850.0, "recover", f"um://{domain}"))
    deployment.recover_user_manager(domain)
    try:
        runtime.coordinator.resume(plan, now=860.0)
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        violations.append(f"resume failed: {exc}")
    if plan.state != "complete":
        violations.append(f"expected completion after resume, plan is {plan.state!r}")
    violations.extend(
        f"post-resume: {v}" for v in directory_state_violations(deployment, runtime)
    )
    if runtime.viewing.misplaced_users():
        violations.append(
            f"viewing histories stranded off-owner: {runtime.viewing.misplaced_users()}"
        )

    # Continuity: every viewer -- moved or not -- renews again after
    # cutover, and the merged log stays one-location clean.
    for client in clients:
        try:
            client.renew_channel_ticket(now=1620.0)
        except Exception as exc:  # noqa: BLE001
            violations.append(f"post-cutover renewal failed for {client.email}: {exc}")
    violations.extend(single_location_violations(runtime.viewing.combined_log()))

    return ScenarioResult(
        name="shard_killed_mid_resharding",
        passed=not violations,
        violations=violations,
        horizon=1620.0,
        fault_events=fault_events,
        outcomes=[],
        counters={k: float(v) for k, v in runtime.counters.snapshot().items()},
        resilience_spans={},
    )


def _adversarial(name: str) -> Callable[[Optional[ChaosConfig]], ScenarioResult]:
    """Late-bound adversarial scenario (breaks the chaos<->adversarial
    import cycle: :mod:`repro.sim.adversarial` imports this module's
    result types at load time)."""

    def run(config: Optional[ChaosConfig] = None) -> ScenarioResult:
        from repro.sim import adversarial

        return getattr(adversarial, name)(config)

    run.__name__ = name
    return run


#: Scenario registry, in documentation order.  ``manager_crash_mid_storm``
#: first: it is the acceptance scenario and the CI smoke target.  The
#: ``polluting_parents``..``replay_storm`` tail is the Byzantine-peer
#: suite (see :mod:`repro.sim.adversarial`).
SCENARIOS: Dict[str, Callable[[Optional[ChaosConfig]], ScenarioResult]] = {
    "manager_crash_mid_storm": manager_crash_mid_storm,
    "rolling_restarts": rolling_restarts,
    "partition_cm_farm": partition_cm_farm,
    "slow_station_brownout": slow_station_brownout,
    "replica_flap": replica_flap,
    "shard_killed_mid_resharding": shard_killed_mid_resharding,
    "polluting_parents": _adversarial("polluting_parents"),
    "key_withholding_parents": _adversarial("key_withholding_parents"),
    "depth_liars": _adversarial("depth_liars"),
    "join_flood": _adversarial("join_flood"),
    "replay_storm": _adversarial("replay_storm"),
}


def run_scenario(name: str, config: Optional[ChaosConfig] = None) -> ScenarioResult:
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        ) from None
    return scenario(config)


def run_all(config: Optional[ChaosConfig] = None) -> List[ScenarioResult]:
    return [scenario(config) for scenario in SCENARIOS.values()]


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------


def render_result(result: ScenarioResult) -> str:
    """Human-readable report for one scenario run."""
    lines = [
        f"scenario: {result.name} -- {'PASS' if result.passed else 'FAIL'}",
        f"  horizon {result.horizon:g}s, "
        f"{len(result.outcomes)} clients, "
        f"{len(result.fault_events)} fault events",
    ]
    for when, kind, target in result.fault_events:
        lines.append(f"    t={when:7.1f}  {kind:<10} {target}")
    rows = [
        (
            o.email.split("@")[0],
            o.retries,
            o.failovers,
            f"{o.degraded_seconds:.1f}",
            o.interruptions,
            "yes" if o.converged else "NO",
        )
        for o in result.outcomes
    ]
    lines.append("")
    lines.append(
        format_table(
            ["client", "retries", "failovers", "degraded (s)", "interruptions",
             "converged"],
            rows,
        )
    )
    lines.append("")
    adversary = {
        k.split(".", 1)[1]: v
        for k, v in sorted(result.counters.items())
        if k.startswith("adversary.")
    }
    if adversary:
        lines.append(
            format_table(
                ["misbehavior / containment", "count"],
                [(k, int(v)) for k, v in adversary.items()],
            )
        )
        lines.append("")
    interesting = {
        k: v
        for k, v in sorted(result.counters.items())
        if v and not k.startswith("adversary.")
    }
    lines.append(f"  counters: {interesting}")
    if result.resilience_spans:
        lines.append(f"  resilience spans: {dict(sorted(result.resilience_spans.items()))}")
    for violation in result.violations:
        lines.append(f"  VIOLATION: {violation}")
    return "\n".join(lines)

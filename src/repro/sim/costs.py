"""Client-compute cost models for the event-driven driver.

The async driver charges virtual time for client-side work (blob
decryption, challenge signing, session-key decryption) before the next
protocol message leaves.  Charging the *measured wall-clock* cost of
that work -- the original design -- made every transcript
nondeterministic: two runs with the same seed scheduled their follow-up
events at slightly different times, so event orderings, trace timings,
and emergent latencies disagreed run-to-run (and CI machines disagreed
with laptops).

This module replaces that with an explicit cost model.  The default,
:class:`FixedCostModel`, charges a deterministic per-operation cost
from a table, so virtual time is a pure function of the seed again.
:class:`WallClockCostModel` keeps the old measured behaviour as an
opt-in mode, and :func:`calibrated_cost_model` builds a fixed table
from the wall-clock calibration harness -- measured once, then frozen,
which is how the week-long timing experiments always worked.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Operation names charged by :class:`~repro.sim.driver.AsyncClient`.
OP_LOGIN_BLOB = "login_blob"
OP_CHALLENGE_SIGN = "challenge_sign"
OP_JOIN_DECRYPT = "join_decrypt"

#: Deterministic defaults, in seconds.  Chosen near the measured means
#: for 512-bit keys on commodity hardware: the login blob work is one
#: symmetric decrypt + an image checksum + one RSA signature; the
#: others are a single RSA private operation each.  WAN RTTs (~0.1 s)
#: dominate every round, so moderate inaccuracy here moves emergent
#: latencies by well under the network jitter.
DEFAULT_COSTS: Dict[str, float] = {
    OP_LOGIN_BLOB: 0.004,
    OP_CHALLENGE_SIGN: 0.003,
    OP_JOIN_DECRYPT: 0.003,
}

#: Charged for operations missing from the table.
DEFAULT_COST = 0.003


class FixedCostModel:
    """Deterministic per-operation costs from a table.

    ``charge`` ignores the measured wall-clock duration entirely: the
    returned virtual cost depends only on the operation name, so event
    schedules are reproducible across runs, machines, and processes.
    """

    def __init__(
        self,
        costs: Optional[Dict[str, float]] = None,
        default: float = DEFAULT_COST,
    ) -> None:
        table = DEFAULT_COSTS if costs is None else costs
        for op, cost in table.items():
            if cost < 0:
                raise ValueError(f"negative cost for {op!r}: {cost}")
        if default < 0:
            raise ValueError(f"negative default cost: {default}")
        self.costs = dict(table)
        self.default = default

    def charge(self, op: str, measured: float) -> float:
        """The virtual cost of ``op``; ``measured`` is ignored."""
        return self.costs.get(op, self.default)


class WallClockCostModel:
    """The pre-fix behaviour: charge the measured wall-clock cost.

    Opt-in only.  Transcripts produced under this model are *not*
    reproducible -- use it when the point is observing real crypto
    cost under the harness (the fidelity experiment's measured mode),
    never when comparing runs.
    """

    def charge(self, op: str, measured: float) -> float:
        return measured


def calibrated_cost_model(repetitions: int = 30, seed: int = 99) -> FixedCostModel:
    """Measure once with the calibration harness, then freeze a table.

    Runs the wall-clock microbenchmarks of
    :mod:`repro.experiments.calibration` and maps the measured client
    compute into a :class:`FixedCostModel`: deterministic within a run
    and across runs of the same process, machine-dependent by design.
    """
    from repro.experiments.calibration import calibrate

    report = calibrate(repetitions=repetitions, seed=seed)
    sign = max(1e-6, report.client_compute)
    return FixedCostModel(
        costs={
            # The login blob adds a symmetric decrypt and an image
            # checksum on top of the signature; both are cheap next to
            # the RSA op, so charge a small fixed overhead above it.
            OP_LOGIN_BLOB: sign * 1.25,
            OP_CHALLENGE_SIGN: sign,
            OP_JOIN_DECRYPT: sign,
        },
        default=sign,
    )

"""Snapshots: one atomic image of manager state plus its WAL watermark.

A snapshot file holds a single frame (same CRC framing as a WAL
record) whose payload is::

    u64 last_seq | f64 taken_at | bytes state

``last_seq`` is the highest WAL sequence number folded into ``state``;
replay resumes from the first record after it.  ``taken_at`` is the
virtual/wall time the snapshot was taken -- purely informational
("snapshot age" in `repro store inspect`).

Installation goes through the backend's atomic ``write``, so a crash
during snapshotting leaves the previous snapshot intact; the WAL is
only truncated after the new image is durable (crash between the two
leaves covered records, which compaction and replay both tolerate).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

from repro.store.backend import StoreError
from repro.util.wire import Decoder, Encoder, WireError

_HEADER_LEN = 8


class SnapshotError(StoreError):
    """Raised when a snapshot file is unreadable or corrupt."""


@dataclass(frozen=True)
class Snapshot:
    """A decoded snapshot image."""

    last_seq: int
    taken_at: float
    state: bytes


def encode_snapshot(last_seq: int, taken_at: float, state: bytes) -> bytes:
    """Serialize a snapshot to its on-disk frame."""
    payload = (
        Encoder().put_u64(last_seq).put_f64(taken_at).put_bytes(state).to_bytes()
    )
    header = Encoder().put_u32(len(payload)).put_u32(zlib.crc32(payload)).to_bytes()
    return header + payload


def decode_snapshot(blob: bytes) -> Optional[Snapshot]:
    """Parse a snapshot file; None for an empty/absent file.

    Unlike the WAL -- where a bad tail is expected crash debris -- a
    snapshot that fails its CRC is real corruption (the write was
    atomic), so it raises instead of being silently ignored.
    """
    if not blob:
        return None
    if len(blob) < _HEADER_LEN:
        raise SnapshotError(f"snapshot too short: {len(blob)} bytes")
    try:
        header = Decoder(blob[:_HEADER_LEN])
        length = header.get_u32()
        crc = header.get_u32()
        payload = blob[_HEADER_LEN : _HEADER_LEN + length]
        if len(payload) != length:
            raise SnapshotError("snapshot truncated mid-payload")
        if zlib.crc32(payload) != crc:
            raise SnapshotError("snapshot CRC mismatch")
        dec = Decoder(payload)
        snapshot = Snapshot(
            last_seq=dec.get_u64(), taken_at=dec.get_f64(), state=dec.get_bytes()
        )
        dec.finish()
        return snapshot
    except WireError as exc:
        raise SnapshotError(f"malformed snapshot: {exc}") from exc

"""Durable state: write-ahead log, snapshots, pluggable backends.

The paper's deployment (Zattoo: 3M registered accounts, 60k concurrent
viewers) takes for granted that the User Manager's UserDB, the Channel
Manager's viewing activity log, and the Channel Policy Manager's
channel/attribute lists survive a process restart -- the
one-viewing-location-per-account rule and utime-based policy
propagation are only meaningful if manager state is durable.  This
package supplies that layer:

* :mod:`repro.store.backend` -- byte storage (:class:`MemoryBackend`
  for tests and simulation, :class:`FileBackend` for real files);
* :mod:`repro.store.wal` -- CRC-framed append-only records with a
  deterministic torn-tail recovery rule;
* :mod:`repro.store.snapshot` -- atomic full-state images with a WAL
  watermark;
* :mod:`repro.store.store` -- :class:`DurableStore`, the
  snapshot+log facade the managers journal through.

Managers integrate via ``attach_store(...)`` (journal every mutation)
and ``recover(store, ...)`` (rebuild identical in-memory state from
snapshot + replay); see the manager modules and DESIGN.md's
"Durability & recovery" section.
"""

from repro.store.backend import FileBackend, MemoryBackend, StoreBackend, StoreError
from repro.store.snapshot import Snapshot, SnapshotError
from repro.store.store import DurableStore, RecoveredState, StoreReport
from repro.store.wal import WalError, WalRecord, WalScan, scan

__all__ = [
    "DurableStore",
    "FileBackend",
    "MemoryBackend",
    "RecoveredState",
    "Snapshot",
    "SnapshotError",
    "StoreBackend",
    "StoreError",
    "StoreReport",
    "WalError",
    "WalRecord",
    "WalScan",
    "scan",
]

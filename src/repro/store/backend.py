"""Storage backends: where durable bytes actually live.

The write-ahead log and snapshot layers above this module speak a
narrow byte-level contract -- read, atomic replace, append, truncate --
so the same recovery logic runs against an in-memory map (tests,
simulations) and a directory of files (real durability).  Nothing in
the contract is async or transactional beyond single-name atomic
replace: the WAL framing (per-record CRC + torn-tail truncation)
supplies crash consistency on top of these primitives, exactly as
production log-structured stores do over POSIX files.
"""

from __future__ import annotations

import os
from typing import Dict, IO, List, Optional

from repro.errors import ReproError


class StoreError(ReproError):
    """Raised when a storage backend operation fails."""


class StoreBackend:
    """Abstract byte-level storage for one store directory.

    Names are flat strings (no path separators); values are byte
    strings.  ``write`` must replace atomically -- a crash during
    ``write`` leaves either the old or the new content, never a mix --
    while ``append`` may tear mid-record (the WAL layer recovers).
    """

    def read(self, name: str) -> bytes:
        """Full contents of ``name``; empty bytes if it does not exist."""
        raise NotImplementedError

    def write(self, name: str, data: bytes) -> None:
        """Atomically replace ``name`` with ``data``."""
        raise NotImplementedError

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name``, creating it if missing."""
        raise NotImplementedError

    def truncate(self, name: str, size: int) -> None:
        """Cut ``name`` down to ``size`` bytes (no-op if already shorter)."""
        raise NotImplementedError

    def size(self, name: str) -> int:
        """Current length of ``name`` in bytes; 0 if missing."""
        raise NotImplementedError

    def exists(self, name: str) -> bool:
        """Does ``name`` hold any written content?"""
        raise NotImplementedError

    def delete(self, name: str) -> None:
        """Remove ``name`` if present."""
        raise NotImplementedError

    def names(self) -> List[str]:
        """All existing names, sorted."""
        raise NotImplementedError


class MemoryBackend(StoreBackend):
    """Byte storage in a plain dict -- for tests and pure simulations.

    Crash injection support: :meth:`tear_tail` chops bytes off the end
    of a name, modelling the partially flushed append a real power cut
    leaves behind.
    """

    def __init__(self) -> None:
        self._data: Dict[str, bytearray] = {}

    def read(self, name: str) -> bytes:
        return bytes(self._data.get(name, b""))

    def write(self, name: str, data: bytes) -> None:
        self._data[name] = bytearray(data)

    def append(self, name: str, data: bytes) -> None:
        self._data.setdefault(name, bytearray()).extend(data)

    def truncate(self, name: str, size: int) -> None:
        existing = self._data.get(name)
        if existing is not None and len(existing) > size:
            del existing[size:]

    def size(self, name: str) -> int:
        return len(self._data.get(name, b""))

    def exists(self, name: str) -> bool:
        return name in self._data

    def delete(self, name: str) -> None:
        self._data.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._data)

    def tear_tail(self, name: str, nbytes: int) -> None:
        """Simulate a torn append: drop the last ``nbytes`` of ``name``."""
        self.truncate(name, max(0, self.size(name) - nbytes))


class FileBackend(StoreBackend):
    """Byte storage in one directory of flat files.

    ``write`` goes through a temp file + ``os.replace`` so snapshot
    installation is atomic against crashes.  ``append`` keeps the file
    handle open between calls (the WAL's hot path) and flushes each
    record; ``fsync=True`` additionally forces the page cache out,
    trading throughput for power-cut safety.
    """

    def __init__(self, root: str, fsync: bool = False) -> None:
        self.root = root
        self.fsync = fsync
        os.makedirs(root, exist_ok=True)
        self._append_handles: Dict[str, IO[bytes]] = {}

    def _path(self, name: str) -> str:
        if not name or "/" in name or os.sep in name or name.startswith("."):
            raise StoreError(f"bad store name: {name!r}")
        return os.path.join(self.root, name)

    def _drop_handle(self, name: str) -> None:
        handle = self._append_handles.pop(name, None)
        if handle is not None:
            handle.close()

    def read(self, name: str) -> bytes:
        path = self._path(name)
        self._flush(name)
        try:
            with open(path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def write(self, name: str, data: bytes) -> None:
        path = self._path(name)
        self._drop_handle(name)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)

    def append(self, name: str, data: bytes) -> None:
        path = self._path(name)
        handle = self._append_handles.get(name)
        if handle is None:
            handle = open(path, "ab")
            self._append_handles[name] = handle
        handle.write(data)
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def _flush(self, name: str) -> None:
        handle = self._append_handles.get(name)
        if handle is not None:
            handle.flush()

    def truncate(self, name: str, size: int) -> None:
        path = self._path(name)
        self._drop_handle(name)
        try:
            if os.path.getsize(path) > size:
                with open(path, "r+b") as fh:
                    fh.truncate(size)
        except FileNotFoundError:
            pass

    def size(self, name: str) -> int:
        self._flush(name)
        try:
            return os.path.getsize(self._path(name))
        except FileNotFoundError:
            return 0

    def exists(self, name: str) -> bool:
        return os.path.exists(self._path(name))

    def delete(self, name: str) -> None:
        self._drop_handle(name)
        try:
            os.remove(self._path(name))
        except FileNotFoundError:
            pass

    def names(self) -> List[str]:
        return sorted(
            entry
            for entry in os.listdir(self.root)
            if not entry.endswith(".tmp") and not entry.startswith(".")
        )

    def close(self) -> None:
        """Release every cached append handle."""
        for name in list(self._append_handles):
            self._drop_handle(name)

"""The write-ahead log: CRC-framed records with torn-tail recovery.

Every manager mutation becomes one WAL record, appended *before* the
caller sees the mutation as complete.  A record travels as one frame::

    u32 payload length | u32 CRC-32 of payload | payload

where the payload itself is the canonical codec encoding of::

    u64 sequence number | u8 record type | bytes body

Sequence numbers are strictly increasing per store, so replay order
and snapshot coverage ("everything up to seqno N is folded in") are
unambiguous.

Recovery rule (deterministic, the one production WALs use): scan
frames from the front; the first frame that is incomplete or fails its
CRC ends the log -- it and everything after it are a *torn tail* left
by a crash mid-append, and are truncated.  A corrupt byte can never
resurface as a half-applied mutation because nothing after the tear is
trusted.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Tuple

from repro.store.backend import StoreError
from repro.util.wire import Decoder, Encoder, WireError

_HEADER_LEN = 8  # u32 length + u32 crc
#: Upper bound on one record's payload; a frame claiming more is
#: treated as corruption, not as a 4 GiB allocation request.
MAX_RECORD_LEN = 64 * 1024 * 1024


class WalError(StoreError):
    """Raised on write-ahead log misuse (not on recoverable torn tails)."""


@dataclass(frozen=True)
class WalRecord:
    """One decoded log record."""

    seq: int
    rec_type: int
    body: bytes


@dataclass(frozen=True)
class WalScan:
    """Result of scanning a WAL byte stream.

    ``clean_length`` is the offset of the first byte *not* covered by a
    valid frame -- the truncation point when a torn tail is present.
    """

    records: List[WalRecord]
    clean_length: int
    torn_bytes: int

    @property
    def torn(self) -> bool:
        return self.torn_bytes > 0


def encode_record(seq: int, rec_type: int, body: bytes) -> bytes:
    """Frame one record for appending."""
    payload = (
        Encoder().put_u64(seq).put_u8(rec_type).put_bytes(body).to_bytes()
    )
    if len(payload) > MAX_RECORD_LEN:
        raise WalError(f"record of {len(payload)} bytes exceeds MAX_RECORD_LEN")
    header = Encoder().put_u32(len(payload)).put_u32(zlib.crc32(payload)).to_bytes()
    return header + payload


def scan(stream: bytes) -> WalScan:
    """Decode every valid frame; stop at the first torn/corrupt one."""
    records: List[WalRecord] = []
    offset = 0
    total = len(stream)
    while offset < total:
        if total - offset < _HEADER_LEN:
            break  # torn mid-header
        header = Decoder(stream[offset : offset + _HEADER_LEN])
        length = header.get_u32()
        crc = header.get_u32()
        if length > MAX_RECORD_LEN:
            break  # corrupt length field
        end = offset + _HEADER_LEN + length
        if end > total:
            break  # torn mid-payload
        payload = stream[offset + _HEADER_LEN : end]
        if zlib.crc32(payload) != crc:
            break  # bit rot or tear overwritten by later data
        try:
            dec = Decoder(payload)
            record = WalRecord(seq=dec.get_u64(), rec_type=dec.get_u8(), body=dec.get_bytes())
            dec.finish()
        except WireError:
            break  # CRC passed but the payload shape is wrong: distrust
        records.append(record)
        offset = end
    return WalScan(records=records, clean_length=offset, torn_bytes=total - offset)


def check_sequence(records: List[WalRecord], after_seq: int = 0) -> List[str]:
    """Sequence-number sanity: strictly increasing, nothing re-ordered.

    Returns human-readable problem strings (empty when healthy).
    Records with ``seq <= after_seq`` are already folded into the
    snapshot -- legal leftovers of a crash between snapshot install
    and WAL truncation -- but must form a prefix, never interleave.
    """
    problems: List[str] = []
    prev: int = 0
    seen_uncovered = False
    for record in records:
        if prev and record.seq <= prev:
            problems.append(f"sequence regressed: record {record.seq} after {prev}")
        if record.seq <= after_seq and seen_uncovered:
            problems.append(
                f"snapshot-covered record {record.seq} after newer records"
            )
        if record.seq > after_seq:
            seen_uncovered = True
        prev = record.seq
    return problems

"""DurableStore: snapshot + write-ahead log over a pluggable backend.

One store persists one manager's state machine.  The contract with the
manager is narrow:

* the manager appends one typed record per mutation (``append``);
* the manager can install a full-state snapshot (``write_snapshot``),
  which atomically replaces the old one and truncates the WAL;
* recovery (``load``) returns the newest snapshot plus every WAL
  record *after* it, in order, with any torn tail already truncated.

The store never interprets record bodies -- managers own their schema
-- which is what lets one implementation back the UserDB, the viewing
log, and the channel lineup alike.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.metrics.durability import StoreStats
from repro.store.backend import StoreBackend
from repro.store.snapshot import Snapshot, SnapshotError, decode_snapshot, encode_snapshot
from repro.store.wal import (
    WalError,
    WalRecord,
    check_sequence,
    encode_record,
    scan,
)

SNAPSHOT_NAME = "snapshot.bin"
WAL_NAME = "wal.bin"


@dataclass(frozen=True)
class RecoveredState:
    """What ``load`` hands back to a recovering manager."""

    snapshot: Optional[Snapshot]
    records: List[WalRecord]
    torn_bytes: int

    @property
    def last_seq(self) -> int:
        if self.records:
            return self.records[-1].seq
        if self.snapshot is not None:
            return self.snapshot.last_seq
        return 0


@dataclass
class StoreReport:
    """``repro store verify`` / ``inspect`` findings."""

    wal_records: int
    wal_bytes: int
    covered_records: int
    torn_bytes: int
    snapshot_seq: Optional[int]
    snapshot_taken_at: Optional[float]
    snapshot_age: Optional[float]
    snapshot_bytes: int
    problems: List[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.problems and self.torn_bytes == 0


class DurableStore:
    """Write-ahead log + snapshot for one state machine."""

    def __init__(self, backend: StoreBackend) -> None:
        self._backend = backend
        self.stats = StoreStats()
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        snapshot = self._read_snapshot()
        last = snapshot.last_seq if snapshot is not None else 0
        result = scan(self._backend.read(WAL_NAME))
        if result.records:
            last = max(last, result.records[-1].seq)
        return last + 1

    def _read_snapshot(self) -> Optional[Snapshot]:
        return decode_snapshot(self._backend.read(SNAPSHOT_NAME))

    # ------------------------------------------------------------------
    # Hot path
    # ------------------------------------------------------------------

    def append(self, rec_type: int, body: bytes) -> int:
        """Durably append one record; returns its sequence number."""
        seq = self._next_seq
        frame = encode_record(seq, rec_type, body)
        self._backend.append(WAL_NAME, frame)
        self._next_seq = seq + 1
        self.stats.note_append(len(frame))
        return seq

    def write_snapshot(self, state: bytes, taken_at: float = 0.0) -> int:
        """Install a snapshot covering everything appended so far.

        Returns the snapshot's high-water sequence number.  Ordering
        matters: the image lands atomically first, the WAL truncation
        second -- a crash in between only leaves covered records.
        """
        last_seq = self._next_seq - 1
        blob = encode_snapshot(last_seq, taken_at, state)
        self._backend.write(SNAPSHOT_NAME, blob)
        self._backend.write(WAL_NAME, b"")
        self.stats.note_snapshot(len(blob))
        return last_seq

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def load(self) -> RecoveredState:
        """Snapshot + post-snapshot records, torn tail truncated.

        Truncation is *persisted*: after ``load`` the backend holds
        exactly the bytes that were trusted, so a second recovery (or
        an inspect) sees a clean log.
        """
        started = time.perf_counter()
        snapshot = self._read_snapshot()
        covered = snapshot.last_seq if snapshot is not None else 0
        result = scan(self._backend.read(WAL_NAME))
        if result.torn:
            self._backend.truncate(WAL_NAME, result.clean_length)
            self.stats.torn_tails_truncated += 1
        records = [r for r in result.records if r.seq > covered]
        self._next_seq = max(covered, result.records[-1].seq if result.records else 0) + 1
        self.stats.note_recovery(len(records), time.perf_counter() - started)
        return RecoveredState(
            snapshot=snapshot, records=records, torn_bytes=result.torn_bytes
        )

    # ------------------------------------------------------------------
    # Introspection / offline maintenance
    # ------------------------------------------------------------------

    def record_count(self) -> int:
        """Valid WAL records currently on the backend."""
        return len(scan(self._backend.read(WAL_NAME)).records)

    def has_state(self) -> bool:
        """True if the backend holds a snapshot or any WAL record.

        Distinguishes a fresh directory (safe to attach and snapshot
        over) from one left by a previous process (must be recovered,
        never overwritten).
        """
        if self._read_snapshot() is not None:
            return True
        return bool(scan(self._backend.read(WAL_NAME)).records)

    def wal_bytes(self) -> int:
        """WAL size on the backend, torn tail included."""
        return self._backend.size(WAL_NAME)

    def verify(self, now: Optional[float] = None) -> StoreReport:
        """Read-only health check: CRCs, torn tail, sequence sanity."""
        problems: List[str] = []
        snapshot: Optional[Snapshot] = None
        snapshot_bytes = self._backend.size(SNAPSHOT_NAME)
        try:
            snapshot = self._read_snapshot()
        except SnapshotError as exc:
            problems.append(str(exc))
        covered = snapshot.last_seq if snapshot is not None else 0
        result = scan(self._backend.read(WAL_NAME))
        if result.torn:
            problems.append(
                f"torn tail: {result.torn_bytes} bytes after offset {result.clean_length}"
            )
        problems.extend(check_sequence(result.records, after_seq=covered))
        age = None
        if snapshot is not None and now is not None:
            age = now - snapshot.taken_at
        return StoreReport(
            wal_records=len(result.records),
            wal_bytes=self._backend.size(WAL_NAME),
            covered_records=sum(1 for r in result.records if r.seq <= covered),
            torn_bytes=result.torn_bytes,
            snapshot_seq=snapshot.last_seq if snapshot is not None else None,
            snapshot_taken_at=snapshot.taken_at if snapshot is not None else None,
            snapshot_age=age,
            snapshot_bytes=snapshot_bytes,
            problems=problems,
        )

    def compact(self) -> StoreReport:
        """Offline cleanup: drop the torn tail and snapshot-covered records.

        This is the schema-agnostic half of compaction (folding live
        records *into* the snapshot needs the manager and happens via
        ``write_snapshot``).  Safe to run on a store left by a crash
        between snapshot install and WAL truncation.
        """
        snapshot = self._read_snapshot()
        covered = snapshot.last_seq if snapshot is not None else 0
        result = scan(self._backend.read(WAL_NAME))
        keep = [r for r in result.records if r.seq > covered]
        rewritten = b"".join(encode_record(r.seq, r.rec_type, r.body) for r in keep)
        self._backend.write(WAL_NAME, rewritten)
        if result.torn:
            self.stats.torn_tails_truncated += 1
        self._next_seq = (keep[-1].seq if keep else covered) + 1
        return self.verify()

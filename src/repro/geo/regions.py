"""Region model: the broadcast geography the DRM restricts over.

A *region* is the paper's designated-market-area analogue: the unit at
which broadcast rights are granted ("each broadcaster usually has the
right to broadcast only in certain geographic region(s)", Section II).
The synthetic deployment is shaped like the production one -- a
European core plus roaming regions -- but nothing in the library
depends on this particular set; regions are just named values matched
by the attribute engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

#: Wildcard region value.  The User Manager always assigns every user a
#: Region that "matches ANY"; the paper's blackout trick relies on the
#: inverse -- a channel attribute with value ANY that *no user value
#: equals literally* (Section IV-A, Fig. 2).  See
#: :mod:`repro.core.attributes` for the matching semantics.
REGION_ANY = "ANY"


@dataclass(frozen=True)
class Region:
    """A broadcast region.

    ``population_weight`` shapes workload generation (how many of the
    synthetic users live there); ``timezone_offset`` shifts the diurnal
    viewing curve in hours relative to the service's reference clock.
    """

    name: str
    population_weight: float
    timezone_offset: int = 0


#: The default synthetic deployment geography.
REGIONS: Dict[str, Region] = {
    "CH": Region("CH", population_weight=0.40, timezone_offset=0),
    "DE": Region("DE", population_weight=0.25, timezone_offset=0),
    "FR": Region("FR", population_weight=0.12, timezone_offset=0),
    "ES": Region("ES", population_weight=0.08, timezone_offset=0),
    "UK": Region("UK", population_weight=0.08, timezone_offset=-1),
    "DK": Region("DK", population_weight=0.04, timezone_offset=0),
    "US": Region("US", population_weight=0.02, timezone_offset=-6),
    "ASIA": Region("ASIA", population_weight=0.01, timezone_offset=7),
}


def region_names() -> List[str]:
    """Names of all deployed regions, stable order."""
    return list(REGIONS.keys())


def population_weights() -> "tuple[List[str], List[float]]":
    """Parallel name/weight lists for weighted sampling."""
    names = region_names()
    return names, [REGIONS[n].population_weight for n in names]

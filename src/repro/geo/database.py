"""Synthetic prefix-based GeoIP/AS database.

Address plan
------------
IPv4 space is carved into /8 blocks assigned round-robin by region
population weight, and each /16 inside a region's blocks belongs to
one synthetic Autonomous System.  The mapping is a pure function of
the address, so lookups need no state beyond the assignment tables
and the database can be rebuilt identically from its seed parameters.

This mirrors how the production system used the address: the User
Manager derives the ``Region`` and ``AS`` user attributes from the
connecting address (Table I), and the Channel Manager and peers match
``NetAddr`` literally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geo.regions import REGIONS, population_weights


@dataclass(frozen=True)
class GeoRecord:
    """The result of a GeoIP lookup: region name and AS number."""

    region: str
    asn: int


def format_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_ip(text: str) -> int:
    """Parse dotted-quad into a 32-bit integer; raises ValueError."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"not an IPv4 address: {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


class GeoDatabase:
    """Deterministic synthetic GeoIP + AS database.

    Parameters
    ----------
    n_blocks:
        Number of /8 blocks to allocate (starting at 11.0.0.0/8 to
        avoid 0/8 and 10/8 oddities).  Blocks are distributed over
        regions proportionally to population weight.
    asn_base:
        First AS number to assign; each /16 gets its own ASN.
    """

    def __init__(self, n_blocks: int = 64, asn_base: int = 1000) -> None:
        if n_blocks < len(REGIONS):
            raise ValueError("need at least one /8 block per region")
        self._block_region: Dict[int, str] = {}
        self._region_blocks: Dict[str, List[int]] = {name: [] for name in REGIONS}
        self._asn_base = asn_base
        names, weights = population_weights()
        total = sum(weights)
        shares = [max(1, round(w / total * n_blocks)) for w in weights]
        # Trim/extend to exactly n_blocks, favouring the largest regions.
        while sum(shares) > n_blocks:
            shares[shares.index(max(shares))] -= 1
        while sum(shares) < n_blocks:
            shares[shares.index(max(shares))] += 1
        block = 11
        for name, share in zip(names, shares):
            for _ in range(share):
                self._block_region[block] = name
                self._region_blocks[name].append(block)
                block += 1

    def lookup(self, address: str) -> Optional[GeoRecord]:
        """Map an address to its region and ASN, or None if unallocated."""
        value = parse_ip(address)
        block = (value >> 24) & 0xFF
        region = self._block_region.get(block)
        if region is None:
            return None
        slash16 = (value >> 16) & 0xFFFF
        return GeoRecord(region=region, asn=self._asn_base + slash16)

    def region_of(self, address: str) -> Optional[str]:
        """Convenience: region name only."""
        record = self.lookup(address)
        return record.region if record else None

    def asn_of(self, address: str) -> int:
        """Convenience: AS number only; 0 for unallocated addresses.

        0 is the peer-selection "unknown AS" sentinel -- a ranked peer
        list never treats two unallocated addresses as same-AS.
        """
        record = self.lookup(address)
        return record.asn if record else 0

    def random_address(self, region: str, rng: random.Random) -> str:
        """Mint a random address that resolves to ``region``.

        Host bytes of .0 and .255 are avoided so addresses look like
        real client endpoints.
        """
        blocks = self._region_blocks.get(region)
        if not blocks:
            raise ValueError(f"unknown or empty region: {region!r}")
        block = rng.choice(blocks)
        b2 = rng.randrange(0, 256)
        b3 = rng.randrange(0, 256)
        b4 = rng.randrange(1, 255)
        return f"{block}.{b2}.{b3}.{b4}"

    def vpn_exit_address(self, apparent_region: str, rng: random.Random) -> str:
        """Mint an address in ``apparent_region`` for a VPN-using client.

        Models the signal leakage the paper accepts as unavoidable: a
        user physically elsewhere presents an exit address inside the
        target region, and the DRM (correctly, per its stated threat
        model) admits them.
        """
        return self.random_address(apparent_region, rng)

"""Synthetic GeoIP / AS substrate.

The production User Manager infers each client's geographic region
from its network address using a commercial GeoIP database and its
Autonomous System from routing data (Section IV-B, refs [12, 13]).
Neither data source is available offline, so this package provides a
deterministic synthetic equivalent: a prefix-based database mapping
IPv4 addresses to ``(region, AS number)`` records, plus helpers to
mint addresses inside a chosen region -- which is all policy
evaluation ever consumes.

A small VPN-leakage model is included because the paper explicitly
assumes "some signal leakage due to the use of VPN is unavoidable"
(Section II); the threat tests exercise it.
"""

from repro.geo.regions import (
    REGIONS,
    REGION_ANY,
    Region,
    region_names,
)
from repro.geo.database import GeoDatabase, GeoRecord

__all__ = [
    "REGIONS",
    "REGION_ANY",
    "Region",
    "region_names",
    "GeoDatabase",
    "GeoRecord",
]

"""repro: a reproduction of "Meeting the Digital Rights Requirements
of Live Broadcast in a Peer-to-Peer Network" (ICDCS 2011).

The library implements the paper's DRM system for live P2P broadcast
-- attribute/policy access control, Kerberos-style User and Channel
Tickets, rotating content keys distributed pair-wise over the overlay
-- together with every substrate it rides on: the crypto layer, a
synthetic GeoIP/AS database, the P2P streaming overlay, workload
generators, a discrete-event simulator for the scalability
experiments, and the baselines the design is compared against.

Quick start::

    from repro import Deployment

    deployment = Deployment(seed=7)
    deployment.add_free_channel("news", regions=["CH", "DE"])
    client = deployment.create_client("alice@example.org", "pw", region="CH")
    client.login(now=0.0)
    peer = deployment.watch(client, "news", now=1.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.deployment import Deployment
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = ["Deployment", "ReproError", "__version__"]

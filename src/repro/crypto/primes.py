"""Prime generation for RSA key material.

Implements deterministic trial division over small primes followed by
Miller--Rabin probabilistic primality testing, driven by the library's
HMAC-DRBG so that key generation is reproducible under a fixed seed.
"""

from __future__ import annotations

from typing import Iterable

from repro.crypto.drbg import HmacDrbg

# Small primes for cheap trial division before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61,
    67, 71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137,
    139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199,
    211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277,
    281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
]

# Deterministic Miller-Rabin witnesses: for n < 3.3e24 the first 13
# primes are a complete witness set, making the test *deterministic*
# for small moduli; for larger n they still give error < 4^-13 per
# random witness, far below anything a simulation can observe.
_MR_WITNESSES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41]


def _miller_rabin_round(n: int, a: int) -> bool:
    """One Miller-Rabin round; True means 'n may be prime'."""
    if a % n == 0:
        return True
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return True
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return True
    return False


def is_probable_prime(n: int, extra_witnesses: Iterable[int] = ()) -> bool:
    """Return True if ``n`` passes trial division and Miller--Rabin.

    Uses a fixed witness set that is deterministic for ``n`` below
    3.3e24 and overwhelmingly accurate above it.  ``extra_witnesses``
    may add rounds (used by property tests).
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    for a in _MR_WITNESSES:
        if not _miller_rabin_round(n, a):
            return False
    for a in extra_witnesses:
        if a >= 2 and not _miller_rabin_round(n, a):
            return False
    return True


def generate_prime(bits: int, drbg: HmacDrbg) -> int:
    """Generate a random probable prime with exactly ``bits`` bits.

    Candidates come from the DRBG with the top bit forced (to fix the
    bit length) and the bottom bit forced (odd).  Expected number of
    candidates is O(bits) by the prime number theorem; with the
    512-bit keys used in simulation this completes in milliseconds.
    """
    if bits < 8:
        raise ValueError("prime size below 8 bits is not useful for RSA")
    while True:
        candidate = drbg.randint_bits(bits) | 1
        if is_probable_prime(candidate):
            return candidate


def generate_safe_distinct_primes(bits: int, drbg: HmacDrbg) -> "tuple[int, int]":
    """Generate two distinct primes of ``bits`` bits each for an RSA modulus.

    Distinctness matters: p == q would make the modulus a perfect
    square and trivially factorable.  The primes are also required to
    differ in their top 16 bits' worth of magnitude only implicitly --
    for simulation-scale keys, plain distinctness suffices.
    """
    p = generate_prime(bits, drbg)
    while True:
        q = generate_prime(bits, drbg)
        if q != p:
            return p, q

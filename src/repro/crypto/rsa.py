"""RSA public-key primitives: keygen, sign/verify, encrypt/decrypt.

The paper's architecture uses public-key crypto in exactly three
places:

1. the User Manager and Channel Manager **sign** tickets (Fig. 3);
2. the managers **certify the client's public key** by including it in
   the signed ticket body (Section IV-B);
3. a target peer **encrypts the per-link session key** under the
   joining client's public key (Section IV-E, JOIN round in Fig. 4c).

This module provides those operations with textbook RSA:

* signatures are full-domain-style: ``sig = pad(SHA-256(m))^d mod n``
  with deterministic PKCS#1-v1.5-shaped padding;
* encryption pads the message with a random non-zero mask byte prefix
  (a simplified PKCS#1 type-2 padding) drawn from the caller's DRBG.

Key sizes default to 512 bits in simulation (fast pure-Python keygen);
the construction is identical at production sizes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from repro.crypto.drbg import HmacDrbg
from repro.crypto.primes import generate_safe_distinct_primes
from repro.errors import DecryptionError, KeyFormatError, SignatureError
from repro.metrics.hotpath import counters as _hot

_SIG_PREFIX = b"\x00\x01"
_SIG_FILL = b"\xff"
_SIG_SEP = b"\x00"
_ENC_PREFIX = b"\x00\x02"
_DIGEST_LEN = 32


def _sha256(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


def _modinv(a: int, m: int) -> int:
    """Modular inverse via extended Euclid; raises if gcd(a, m) != 1."""
    g, x = _egcd(a, m)
    if g != 1:
        raise ValueError("modular inverse does not exist")
    return x % m


def _egcd(a: int, b: int) -> "tuple[int, int]":
    """Return (gcd, x) with a*x ≡ gcd (mod b)."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s


@dataclass(frozen=True)
class RsaPublicKey:
    """An RSA public key ``(n, e)``.

    Instances are immutable and hashable so they can serve as dict keys
    (e.g. a peer indexing session keys by its children's public keys).
    """

    n: int
    e: int

    @property
    def size_bytes(self) -> int:
        """Modulus size in whole bytes."""
        return (self.n.bit_length() + 7) // 8

    def verify(self, message: bytes, signature: bytes) -> None:
        """Verify ``signature`` over ``message``; raise on failure.

        Raising (rather than returning bool) keeps callers honest: a
        forgotten check cannot silently pass.
        """
        if len(signature) != self.size_bytes:
            raise SignatureError("signature length does not match modulus")
        sig_int = int.from_bytes(signature, "big")
        if sig_int >= self.n:
            raise SignatureError("signature out of range")
        _hot.rsa_verifies += 1
        recovered = pow(sig_int, self.e, self.n)
        padded = recovered.to_bytes(self.size_bytes, "big")
        expected = _pad_digest(_sha256(message), self.size_bytes)
        if padded != expected:
            raise SignatureError("signature does not verify")

    def is_valid_signature(self, message: bytes, signature: bytes) -> bool:
        """Boolean form of :meth:`verify` for callers that branch."""
        try:
            self.verify(message, signature)
        except SignatureError:
            return False
        return True

    def encrypt(self, plaintext: bytes, drbg: HmacDrbg) -> bytes:
        """Encrypt a short message (e.g. a session key) to this key.

        Uses simplified PKCS#1 type-2 padding: ``00 02 || nonzero-random
        || 00 || plaintext``.  Message must fit with at least 8 bytes of
        random padding.
        """
        k = self.size_bytes
        max_len = k - 11
        if len(plaintext) > max_len:
            raise ValueError(
                f"plaintext too long for {k * 8}-bit key: {len(plaintext)} > {max_len}"
            )
        pad_len = k - 3 - len(plaintext)
        pad = bytearray()
        while len(pad) < pad_len:
            byte = drbg.generate(1)
            if byte != b"\x00":
                pad.extend(byte)
        block = _ENC_PREFIX + bytes(pad) + b"\x00" + plaintext
        m_int = int.from_bytes(block, "big")
        c_int = pow(m_int, self.e, self.n)
        return c_int.to_bytes(k, "big")

    def to_bytes(self) -> bytes:
        """Canonical serialization: lengths-then-values, big endian.

        Memoized: the encoding is pure over the frozen fields, and the
        ticket pipeline re-serializes the same key on every signed-body
        encode and cache lookup.
        """
        cached = self.__dict__.get("_bytes_cache")
        if cached is not None:
            return cached
        n_b = self.n.to_bytes((self.n.bit_length() + 7) // 8, "big")
        e_b = self.e.to_bytes((self.e.bit_length() + 7) // 8, "big")
        blob = (
            len(n_b).to_bytes(2, "big") + n_b + len(e_b).to_bytes(2, "big") + e_b
        )
        object.__setattr__(self, "_bytes_cache", blob)
        return blob

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RsaPublicKey":
        """Parse the output of :meth:`to_bytes`."""
        try:
            n_len = int.from_bytes(blob[0:2], "big")
            n = int.from_bytes(blob[2 : 2 + n_len], "big")
            off = 2 + n_len
            e_len = int.from_bytes(blob[off : off + 2], "big")
            e = int.from_bytes(blob[off + 2 : off + 2 + e_len], "big")
            if off + 2 + e_len != len(blob) or n == 0 or e == 0:
                raise ValueError
        except (ValueError, IndexError) as exc:
            raise KeyFormatError("malformed public key blob") from exc
        return cls(n=n, e=e)

    def fingerprint(self) -> str:
        """Short hex identifier for logs, debugging, and cache keys.

        Memoized alongside :meth:`to_bytes` -- the ticket verification
        cache computes it once per lookup.
        """
        cached = self.__dict__.get("_fingerprint_cache")
        if cached is not None:
            return cached
        fp = _sha256(self.to_bytes()).hex()[:16]
        object.__setattr__(self, "_fingerprint_cache", fp)
        return fp


@dataclass(frozen=True)
class RsaPrivateKey:
    """An RSA private key; carries its public half.

    The decryption/signing exponent ``d`` satisfies
    ``e*d ≡ 1 (mod lcm(p-1, q-1))``.

    When the prime factorization is known the key also carries the
    Chinese-Remainder-Theorem components ``(p, q, dp, dq, qinv)`` with
    ``dp = d mod (p-1)``, ``dq = d mod (q-1)``, ``qinv = q^-1 mod p``.
    Private-key operations then run as two half-size exponentiations
    recombined by Garner's formula -- ~3-4x faster than the single
    full-size ``pow(m, d, n)`` -- which is what keeps ticket signing
    off the SWITCH2 critical path at renewal-storm load.  Keys built
    from ``(n, e, d)`` alone still work; they simply take the slow
    path.
    """

    n: int
    e: int
    d: int
    p: Optional[int] = None
    q: Optional[int] = None
    dp: Optional[int] = None
    dq: Optional[int] = None
    qinv: Optional[int] = None

    def __post_init__(self) -> None:
        if self.p is not None:
            if self.q is None or self.p * self.q != self.n:
                raise KeyFormatError("CRT primes do not factor the modulus")
            if self.dp is None or self.dq is None or self.qinv is None:
                raise KeyFormatError("incomplete CRT parameter set")
            if (self.qinv * self.q) % self.p != 1:
                raise KeyFormatError("qinv is not q^-1 mod p")

    @property
    def has_crt(self) -> bool:
        """Does this key carry the CRT fast-path components?"""
        return self.p is not None

    def without_crt(self) -> "RsaPrivateKey":
        """A copy restricted to ``(n, e, d)`` -- the slow path.

        Used by benchmarks to measure the CRT speedup, and by callers
        that must ship a key somewhere the factorization should not
        travel.
        """
        return RsaPrivateKey(n=self.n, e=self.e, d=self.d)

    @property
    def public_key(self) -> RsaPublicKey:
        """The corresponding public key."""
        return RsaPublicKey(n=self.n, e=self.e)

    @property
    def size_bytes(self) -> int:
        """Modulus size in whole bytes."""
        return (self.n.bit_length() + 7) // 8

    def _private_op(self, m_int: int) -> int:
        """``m^d mod n`` via CRT when possible, else directly."""
        _hot.rsa_private_ops += 1
        if self.p is None:
            return pow(m_int, self.d, self.n)
        _hot.rsa_crt_ops += 1
        m1 = pow(m_int % self.p, self.dp, self.p)
        m2 = pow(m_int % self.q, self.dq, self.q)
        h = (self.qinv * (m1 - m2)) % self.p
        return m2 + h * self.q

    def sign(self, message: bytes) -> bytes:
        """Sign SHA-256(message) with deterministic padding."""
        padded = _pad_digest(_sha256(message), self.size_bytes)
        m_int = int.from_bytes(padded, "big")
        sig_int = self._private_op(m_int)
        return sig_int.to_bytes(self.size_bytes, "big")

    def decrypt(self, ciphertext: bytes) -> bytes:
        """Invert :meth:`RsaPublicKey.encrypt`; raise on bad padding."""
        if len(ciphertext) != self.size_bytes:
            raise DecryptionError("ciphertext length does not match modulus")
        c_int = int.from_bytes(ciphertext, "big")
        if c_int >= self.n:
            raise DecryptionError("ciphertext out of range")
        m_int = self._private_op(c_int)
        block = m_int.to_bytes(self.size_bytes, "big")
        if not block.startswith(_ENC_PREFIX):
            raise DecryptionError("bad padding prefix")
        sep = block.find(b"\x00", 2)
        if sep == -1 or sep < 10:
            raise DecryptionError("bad padding structure")
        return block[sep + 1 :]


def _pad_digest(digest: bytes, size: int) -> bytes:
    """PKCS#1-v1.5-shaped signature padding: ``00 01 FF.. 00 digest``."""
    if len(digest) != _DIGEST_LEN:
        raise ValueError("digest must be SHA-256 sized")
    fill_len = size - len(_SIG_PREFIX) - 1 - len(digest)
    if fill_len < 8:
        raise ValueError(f"modulus too small for signature padding ({size} bytes)")
    return _SIG_PREFIX + _SIG_FILL * fill_len + _SIG_SEP + digest


def generate_keypair(drbg: HmacDrbg, bits: int = 512, e: int = 65537) -> RsaPrivateKey:
    """Generate an RSA keypair with a ``bits``-bit modulus.

    ``bits`` is the modulus size; each prime has ``bits // 2`` bits.
    Regenerates primes in the (vanishingly rare) event that ``e`` is
    not coprime to the totient.
    """
    if bits < 256:
        raise ValueError("modulus below 256 bits cannot hold signature padding")
    if bits % 2 != 0:
        raise ValueError("modulus bit size must be even")
    half = bits // 2
    while True:
        p, q = generate_safe_distinct_primes(half, drbg)
        lam = (p - 1) * (q - 1) // _gcd(p - 1, q - 1)
        if lam % e == 0:
            continue
        try:
            d = _modinv(e, lam)
        except ValueError:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        return RsaPrivateKey(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=_modinv(q, p),
        )


def _gcd(a: int, b: int) -> int:
    while b:
        a, b = b, a % b
    return a

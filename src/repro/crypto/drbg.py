"""Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A style).

All randomness used by the library's crypto layer flows through
:class:`HmacDrbg` so that simulations are reproducible: the same seed
produces the same RSA keys, nonces, session keys and content keys on
every run.  The construction follows the HMAC_DRBG of SP 800-90A
(instantiate / reseed / generate with the update function), minus the
prediction-resistance machinery that has no role in a simulation.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional


class HmacDrbg:
    """HMAC-SHA256 deterministic random bit generator.

    Parameters
    ----------
    seed:
        Entropy input.  Two generators built from equal seeds emit
        identical byte streams.
    personalization:
        Optional domain-separation string, so independent subsystems
        (e.g. the User Manager's nonce source and a peer's session-key
        source) can share one master seed without sharing a stream.
    """

    _HASHLEN = 32  # SHA-256 output size in bytes

    def __init__(self, seed: bytes, personalization: bytes = b"") -> None:
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes")
        self._key = b"\x00" * self._HASHLEN
        self._value = b"\x01" * self._HASHLEN
        self._reseed_counter = 1
        self._update(bytes(seed) + b"|" + personalization)

    def _hmac(self, key: bytes, data: bytes) -> bytes:
        return hmac.new(key, data, hashlib.sha256).digest()

    def _update(self, provided: Optional[bytes] = None) -> None:
        data = provided if provided is not None else b""
        self._key = self._hmac(self._key, self._value + b"\x00" + data)
        self._value = self._hmac(self._key, self._value)
        if provided is not None:
            self._key = self._hmac(self._key, self._value + b"\x01" + data)
            self._value = self._hmac(self._key, self._value)

    def reseed(self, entropy: bytes) -> None:
        """Mix additional entropy into the generator state."""
        self._update(entropy)
        self._reseed_counter = 1

    def generate(self, nbytes: int) -> bytes:
        """Return ``nbytes`` pseudorandom bytes."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        out = bytearray()
        while len(out) < nbytes:
            self._value = self._hmac(self._key, self._value)
            out.extend(self._value)
        self._update()
        self._reseed_counter += 1
        return bytes(out[:nbytes])

    def randint_bits(self, bits: int) -> int:
        """Return a uniform random integer with exactly ``bits`` bits.

        The top bit is forced to 1 so the result has the requested bit
        length -- the form needed for prime candidate generation.
        """
        if bits < 2:
            raise ValueError("bits must be >= 2")
        nbytes = (bits + 7) // 8
        raw = int.from_bytes(self.generate(nbytes), "big")
        raw &= (1 << bits) - 1
        raw |= 1 << (bits - 1)
        return raw

    def randbelow(self, upper: int) -> int:
        """Return a uniform random integer in ``[0, upper)``."""
        if upper <= 0:
            raise ValueError("upper must be positive")
        bits = upper.bit_length()
        nbytes = (bits + 7) // 8
        while True:
            candidate = int.from_bytes(self.generate(nbytes), "big")
            candidate &= (1 << bits) - 1
            if candidate < upper:
                return candidate

    def fork(self, label: bytes) -> "HmacDrbg":
        """Derive an independent child generator.

        Forking lets one master seed drive many components while keeping
        their streams independent: the child is keyed by fresh output of
        the parent plus a label, so sibling forks with distinct labels
        never correlate.
        """
        return HmacDrbg(self.generate(32), personalization=label)

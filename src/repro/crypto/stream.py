"""Authenticated symmetric encryption: the content/session cipher.

The production system encrypts the channel signal with 128-bit AES
under a rotating *content key* and protects key-distribution hops with
per-link *session keys* (Section IV-E).  AES itself is irrelevant to
every quantity the paper measures, so this module substitutes a
keyed-XOF stream cipher with an encrypt-then-MAC HMAC tag
(substitution documented in DESIGN.md).  The interface mirrors an AEAD:

>>> key = SymmetricKey.generate(drbg)
>>> ct = key.encrypt(b"frame", nonce=7)
>>> key.decrypt(ct, nonce=7)
b'frame'

Integrity matters in the paper's threat model: encrypting the signal
exists partly "to detect when the channel has been hijacked, whereby
rogue contents are ... injected into the P2P network" (Section IV-E).
The MAC tag is what turns injection into a detectable event.

The cipher sits on the data-plane hot path -- every media frame is
sealed once at the Channel Server and opened at every peer, at 25
frames/s across the whole audience -- so the implementation is
vectorized end to end (DESIGN.md §11):

* the keystream for ``(key, nonce)`` is ``SHAKE256(key || "|ctr|" ||
  nonce_8)`` squeezed to the message length in **one** C-level call;
  the XOF state over the invariant ``key || "|ctr|"`` prefix is
  absorbed once per key and ``.copy()``'d per message;
* the HMAC-SHA256 key schedule is absorbed once per key and
  ``.copy()``'d per tag;
* the keystream XOR runs as a single wide-integer operation instead of
  a per-byte generator.

:func:`reference_encrypt`/:func:`reference_decrypt` are a scalar
implementation of the *same* construction (per-32-byte-block squeeze,
per-byte XOR, fresh HMAC per tag); the equivalence suite pins the fast
path against them byte for byte.  :func:`legacy_encrypt`/
:func:`legacy_decrypt` retain the seed SHA-256-CTR implementation this
PR replaced -- not ciphertext-compatible, kept as the data-plane
benchmark's *before* baseline.
"""

from __future__ import annotations

import hashlib
import hmac
from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Sequence

from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError, KeyFormatError
from repro.metrics.dataplane import counters as dataplane_counters

_KEY_LEN = 16  # 128-bit key, matching the paper's AES-128
_TAG_LEN = 16  # truncated HMAC-SHA256 tag
_BLOCK = 32  # keystream accounting unit (one SHA-256 output's worth)

#: Cached per-key XOF/MAC states, keyed by key material.  Kept at
#: module level (bounded LRU) rather than on the SymmetricKey instance
#: so frozen keys stay trivially picklable/deep-copyable -- hashlib
#: and hmac state objects are neither.
_STATE_CACHE_MAX = 1024
_prefix_states: "OrderedDict[bytes, object]" = OrderedDict()
_mac_states: "OrderedDict[bytes, hmac.HMAC]" = OrderedDict()


def _cached_state(cache: OrderedDict, key: bytes, build):
    state = cache.get(key)
    if state is None:
        state = build()
        cache[key] = state
        if len(cache) > _STATE_CACHE_MAX:
            cache.popitem(last=False)
    else:
        cache.move_to_end(key)
    return state


def _prefix_state(key: bytes):
    """XOF state over the per-key keystream prefix ``key || "|ctr|"``."""
    return _cached_state(
        _prefix_states, key, lambda: hashlib.shake_256(key + b"|ctr|")
    )


def _mac_state(key: bytes) -> "hmac.HMAC":
    """HMAC-SHA256 state with the key schedule absorbed, body pending."""
    return _cached_state(
        _mac_states, key, lambda: hmac.new(key, digestmod=hashlib.sha256)
    )


try:  # numpy is an optional accelerator; the wide-int path is always there
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None


def _xor_bytes(data, stream: bytes) -> bytes:
    """XOR two equal-length byte strings in one vectorized operation."""
    if _np is not None and len(data) >= 256:
        return (
            _np.frombuffer(data, dtype=_np.uint8)
            ^ _np.frombuffer(stream, dtype=_np.uint8)
        ).tobytes()
    n = len(data)
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(n, "big")


def _keystream(key: bytes, nonce: int, length: int) -> bytes:
    """Derive ``length`` keystream bytes for (key, nonce).

    The keystream is ``SHAKE256(key || "|ctr|" || nonce_8)`` squeezed
    to ``length`` -- the invariant prefix state comes from the per-key
    cache, so the per-message work is one ``.copy()``, one 8-byte
    update, and a single C-level squeeze.
    """
    if length <= 0:
        return b""
    xof = _prefix_state(key).copy()
    xof.update(nonce.to_bytes(8, "big", signed=False))
    dataplane_counters.keystream_blocks += -(-length // _BLOCK)
    return xof.digest(length)


def _reference_keystream(key: bytes, nonce: int, length: int) -> bytes:
    """Scalar keystream: re-absorb and squeeze per 32-byte block.

    Computes exactly the bytes of :func:`_keystream` the slow way,
    leaning on the XOF prefix property (``digest(n)`` is a prefix of
    ``digest(m)`` for ``n <= m``): block ``i`` re-absorbs the whole
    input from scratch and squeezes through offset ``32*(i+1)``.
    Retained as the behavioural pin for the vectorized path -- the
    equivalence suite asserts byte-for-byte agreement.
    """
    out = bytearray()
    nonce_b = nonce.to_bytes(8, "big", signed=False)
    block_index = 0
    while len(out) < length:
        end = (block_index + 1) * _BLOCK
        block = hashlib.shake_256(key + b"|ctr|" + nonce_b).digest(end)[-_BLOCK:]
        out.extend(block)
        block_index += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class SymmetricKey:
    """A 128-bit symmetric key with AEAD-style encrypt/decrypt.

    Used both as the rotating *content key* (re-keyed every epoch by
    the Channel Server) and as the pair-wise *session key* shared by
    two adjacent peers in the distribution tree.
    """

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != _KEY_LEN:
            raise KeyFormatError(f"symmetric key must be {_KEY_LEN} bytes")

    @classmethod
    def generate(cls, drbg: HmacDrbg) -> "SymmetricKey":
        """Draw a fresh key from the given DRBG."""
        return cls(material=drbg.generate(_KEY_LEN))

    def encrypt(self, plaintext: bytes, nonce: int, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate ``plaintext``.

        ``nonce`` must be unique per key (content packets use their
        sequence number; key-distribution messages use the content-key
        serial).  ``aad`` binds additional context (e.g. the channel id)
        into the tag without encrypting it.
        """
        if nonce < 0:
            raise ValueError("nonce must be non-negative")
        stream = _keystream(self.material, nonce, len(plaintext))
        body = _xor_bytes(plaintext, stream)
        tag = self._tag(body, nonce, aad)
        return body + tag

    def encrypt_many(
        self,
        plaintexts: Sequence[bytes],
        nonces: Sequence[int],
        aad: bytes = b"",
    ) -> List[bytes]:
        """Seal a whole batch (e.g. one GOP) under this key.

        Semantically identical to ``[encrypt(p, n, aad) for p, n in
        zip(plaintexts, nonces)]`` but hoists the per-key XOF/MAC state
        lookups and the AAD tag header out of the loop.  One extra
        check the scalar loop cannot make: a nonce repeated *within*
        the batch raises ``ValueError`` instead of silently reusing
        keystream.
        """
        if len(plaintexts) != len(nonces):
            raise ValueError(
                f"{len(plaintexts)} plaintexts but {len(nonces)} nonces"
            )
        if any(nonce < 0 for nonce in nonces):
            raise ValueError("nonce must be non-negative")
        if len(set(nonces)) != len(nonces):
            # Two messages sealed under the same (key, nonce) share a
            # keystream: XOR of the ciphertexts reveals the XOR of the
            # plaintexts.  The packet paths can't produce duplicates
            # (sequence numbers are monotone) but the API is public.
            raise ValueError("duplicate nonce in batch (keystream reuse)")
        prefix = _prefix_state(self.material)
        mac = _mac_state(self.material)
        aad_header = len(aad).to_bytes(4, "big") + aad
        out: List[bytes] = []
        blocks = 0
        for plaintext, nonce in zip(plaintexts, nonces):
            length = len(plaintext)
            nonce_b = nonce.to_bytes(8, "big", signed=False)
            if length:
                xof = prefix.copy()
                xof.update(nonce_b)
                blocks += -(-length // _BLOCK)
                body = _xor_bytes(plaintext, xof.digest(length))
            else:
                body = b""
            tagger = mac.copy()
            tagger.update(nonce_b + aad_header)
            tagger.update(body)
            out.append(body + tagger.digest()[:_TAG_LEN])
        dataplane_counters.keystream_blocks += blocks
        return out

    def decrypt(self, ciphertext, nonce: int, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raise :class:`DecryptionError` on tamper.

        Accepts any bytes-like buffer; the body/tag split is done over
        a :class:`memoryview` so opening a wire-decoded packet never
        copies the ciphertext.
        """
        if len(ciphertext) < _TAG_LEN:
            raise DecryptionError("ciphertext shorter than tag")
        view = memoryview(ciphertext)
        body, tag = view[:-_TAG_LEN], view[-_TAG_LEN:]
        expected = self._tag(body, nonce, aad)
        if not hmac.compare_digest(tag, expected):
            raise DecryptionError("integrity tag mismatch")
        stream = _keystream(self.material, nonce, len(body))
        return _xor_bytes(body, stream)

    def _tag(self, body, nonce: int, aad: bytes) -> bytes:
        mac = _mac_state(self.material).copy()
        mac.update(nonce.to_bytes(8, "big") + len(aad).to_bytes(4, "big") + aad)
        mac.update(body)
        return mac.digest()[:_TAG_LEN]

    def fingerprint(self) -> str:
        """Short identifier safe for logs (does not reveal the key).

        Memoized on first use: tracing and log formatting call this on
        every event, and the key is frozen, so one SHA-256 suffices.
        """
        cached = self.__dict__.get("_fingerprint_cache")
        if cached is not None:
            return cached
        fp = hashlib.sha256(b"fp|" + self.material).hexdigest()[:12]
        object.__setattr__(self, "_fingerprint_cache", fp)
        return fp


def reference_encrypt(
    key: "SymmetricKey", plaintext: bytes, nonce: int, aad: bytes = b""
) -> bytes:
    """Scalar encrypt: byte-identical to :meth:`SymmetricKey.encrypt`.

    Per-byte generator XOR over :func:`_reference_keystream`, with a
    fresh HMAC per tag.  The equivalence suite pins the fast path
    against this.
    """
    if nonce < 0:
        raise ValueError("nonce must be non-negative")
    stream = _reference_keystream(key.material, nonce, len(plaintext))
    body = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = _fresh_tag(key.material, body, nonce, aad)
    return body + tag


def reference_decrypt(
    key: "SymmetricKey", ciphertext: bytes, nonce: int, aad: bytes = b""
) -> bytes:
    """Scalar decrypt: byte-identical to :meth:`SymmetricKey.decrypt`."""
    if len(ciphertext) < _TAG_LEN:
        raise DecryptionError("ciphertext shorter than tag")
    ciphertext = bytes(ciphertext)
    body, tag = ciphertext[:-_TAG_LEN], ciphertext[-_TAG_LEN:]
    expected = _fresh_tag(key.material, body, nonce, aad)
    if not hmac.compare_digest(tag, expected):
        raise DecryptionError("integrity tag mismatch")
    stream = _reference_keystream(key.material, nonce, len(body))
    return bytes(a ^ b for a, b in zip(body, stream))


def _legacy_keystream(key: bytes, nonce: int, length: int) -> bytes:
    """The seed SHA-256-CTR keystream: full re-hash per 32-byte block."""
    out = bytearray()
    counter = 0
    nonce_b = nonce.to_bytes(8, "big", signed=False)
    while len(out) < length:
        block = hashlib.sha256(
            key + b"|ctr|" + nonce_b + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


def legacy_encrypt(
    key: "SymmetricKey", plaintext: bytes, nonce: int, aad: bytes = b""
) -> bytes:
    """The seed data-plane encrypt path, retained verbatim.

    SHA-256-CTR keystream rebuilt from scratch per block and a
    per-byte generator XOR.  **Not** ciphertext-compatible with
    :meth:`SymmetricKey.encrypt` (different keystream construction);
    kept solely as the data-plane benchmark's *before* configuration.
    """
    if nonce < 0:
        raise ValueError("nonce must be non-negative")
    stream = _legacy_keystream(key.material, nonce, len(plaintext))
    body = bytes(a ^ b for a, b in zip(plaintext, stream))
    tag = _fresh_tag(key.material, body, nonce, aad)
    return body + tag


def legacy_decrypt(
    key: "SymmetricKey", ciphertext: bytes, nonce: int, aad: bytes = b""
) -> bytes:
    """The seed data-plane decrypt path, retained verbatim."""
    if len(ciphertext) < _TAG_LEN:
        raise DecryptionError("ciphertext shorter than tag")
    ciphertext = bytes(ciphertext)
    body, tag = ciphertext[:-_TAG_LEN], ciphertext[-_TAG_LEN:]
    expected = _fresh_tag(key.material, body, nonce, aad)
    if not hmac.compare_digest(tag, expected):
        raise DecryptionError("integrity tag mismatch")
    stream = _legacy_keystream(key.material, nonce, len(body))
    return bytes(a ^ b for a, b in zip(body, stream))


def _fresh_tag(material: bytes, body: bytes, nonce: int, aad: bytes) -> bytes:
    msg = nonce.to_bytes(8, "big") + len(aad).to_bytes(4, "big") + aad + body
    return hmac.new(material, msg, hashlib.sha256).digest()[:_TAG_LEN]


def seal(key: SymmetricKey, plaintext: bytes, nonce: int, aad: bytes = b"") -> bytes:
    """Functional alias for :meth:`SymmetricKey.encrypt`."""
    return key.encrypt(plaintext, nonce, aad)


def open_sealed(key: SymmetricKey, ciphertext: bytes, nonce: int, aad: bytes = b"") -> bytes:
    """Functional alias for :meth:`SymmetricKey.decrypt`."""
    return key.decrypt(ciphertext, nonce, aad)

"""Authenticated symmetric encryption: the content/session cipher.

The production system encrypts the channel signal with 128-bit AES
under a rotating *content key* and protects key-distribution hops with
per-link *session keys* (Section IV-E).  AES itself is irrelevant to
every quantity the paper measures, so this module substitutes a
SHA-256-based CTR stream cipher with an encrypt-then-MAC HMAC tag
(substitution documented in DESIGN.md).  The interface mirrors an AEAD:

>>> key = SymmetricKey.generate(drbg)
>>> ct = key.encrypt(b"frame", nonce=7)
>>> key.decrypt(ct, nonce=7)
b'frame'

Integrity matters in the paper's threat model: encrypting the signal
exists partly "to detect when the channel has been hijacked, whereby
rogue contents are ... injected into the P2P network" (Section IV-E).
The MAC tag is what turns injection into a detectable event.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.crypto.drbg import HmacDrbg
from repro.errors import DecryptionError, KeyFormatError

_KEY_LEN = 16  # 128-bit key, matching the paper's AES-128
_TAG_LEN = 16  # truncated HMAC-SHA256 tag
_BLOCK = 32  # SHA-256 output per counter block


def _keystream(key: bytes, nonce: int, length: int) -> bytes:
    """Derive ``length`` keystream bytes for (key, nonce) in CTR mode."""
    out = bytearray()
    counter = 0
    nonce_b = nonce.to_bytes(8, "big", signed=False)
    while len(out) < length:
        block = hashlib.sha256(
            key + b"|ctr|" + nonce_b + counter.to_bytes(8, "big")
        ).digest()
        out.extend(block)
        counter += 1
    return bytes(out[:length])


@dataclass(frozen=True)
class SymmetricKey:
    """A 128-bit symmetric key with AEAD-style encrypt/decrypt.

    Used both as the rotating *content key* (re-keyed every epoch by
    the Channel Server) and as the pair-wise *session key* shared by
    two adjacent peers in the distribution tree.
    """

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != _KEY_LEN:
            raise KeyFormatError(f"symmetric key must be {_KEY_LEN} bytes")

    @classmethod
    def generate(cls, drbg: HmacDrbg) -> "SymmetricKey":
        """Draw a fresh key from the given DRBG."""
        return cls(material=drbg.generate(_KEY_LEN))

    def encrypt(self, plaintext: bytes, nonce: int, aad: bytes = b"") -> bytes:
        """Encrypt and authenticate ``plaintext``.

        ``nonce`` must be unique per key (content packets use their
        sequence number; key-distribution messages use the content-key
        serial).  ``aad`` binds additional context (e.g. the channel id)
        into the tag without encrypting it.
        """
        if nonce < 0:
            raise ValueError("nonce must be non-negative")
        stream = _keystream(self.material, nonce, len(plaintext))
        body = bytes(a ^ b for a, b in zip(plaintext, stream))
        tag = self._tag(body, nonce, aad)
        return body + tag

    def decrypt(self, ciphertext: bytes, nonce: int, aad: bytes = b"") -> bytes:
        """Verify the tag and decrypt; raise :class:`DecryptionError` on tamper."""
        if len(ciphertext) < _TAG_LEN:
            raise DecryptionError("ciphertext shorter than tag")
        body, tag = ciphertext[:-_TAG_LEN], ciphertext[-_TAG_LEN:]
        expected = self._tag(body, nonce, aad)
        if not hmac.compare_digest(tag, expected):
            raise DecryptionError("integrity tag mismatch")
        stream = _keystream(self.material, nonce, len(body))
        return bytes(a ^ b for a, b in zip(body, stream))

    def _tag(self, body: bytes, nonce: int, aad: bytes) -> bytes:
        msg = nonce.to_bytes(8, "big") + len(aad).to_bytes(4, "big") + aad + body
        return hmac.new(self.material, msg, hashlib.sha256).digest()[:_TAG_LEN]

    def fingerprint(self) -> str:
        """Short identifier safe for logs (does not reveal the key)."""
        return hashlib.sha256(b"fp|" + self.material).hexdigest()[:12]


def seal(key: SymmetricKey, plaintext: bytes, nonce: int, aad: bytes = b"") -> bytes:
    """Functional alias for :meth:`SymmetricKey.encrypt`."""
    return key.encrypt(plaintext, nonce, aad)


def open_sealed(key: SymmetricKey, ciphertext: bytes, nonce: int, aad: bytes = b"") -> bytes:
    """Functional alias for :meth:`SymmetricKey.decrypt`."""
    return key.decrypt(ciphertext, nonce, aad)

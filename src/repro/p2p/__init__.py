"""The P2P live-streaming overlay substrate.

The paper's DRM rides on the P2P network of reference [6] (Zattoo's
receiver-based peer-division multiplexing).  This package implements
the pieces the DRM interacts with:

* :mod:`repro.p2p.peer` -- a peer: join admission (Channel Ticket
  verification), per-link session keys, content/key forwarding, and
  child-expiry enforcement;
* :mod:`repro.p2p.overlay` -- a per-channel overlay: peer registry,
  peer-list sampling for the Channel Manager, tree construction and
  repair under churn, invariants;
* :mod:`repro.p2p.substreams` -- peer-division multiplexing: the
  stream split into sub-streams delivered over (possibly) different
  parents;
* :mod:`repro.p2p.churn` -- join/leave processes for simulations.
"""

from repro.p2p.peer import Peer, ChildLink
from repro.p2p.overlay import ChannelOverlay
from repro.p2p.substreams import SubstreamAssignment
from repro.p2p.selection import RegionAwarePeerSampler

__all__ = [
    "Peer",
    "ChildLink",
    "ChannelOverlay",
    "SubstreamAssignment",
    "RegionAwarePeerSampler",
]

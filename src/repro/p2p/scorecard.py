"""Per-peer misbehavior scoring, quarantine, and detection events.

The paper's DRM holds cryptographically against untrusted peers (AEAD
tags reject polluted packets, tickets gate admission), but *liveness*
under Byzantine peers needs an overlay-side answer: a parent that
feeds garbage, withholds keys, or games the ranking must be detected
from its observable behavior and routed around.  The
:class:`PeerScorecard` is that answer -- a decayed misbehavior score
per peer, fed by attribution hooks in the data plane
(:meth:`repro.p2p.peer.Peer.deliver_packet`), the key-distribution
plane (replay-window rejections), the ranking auditor
(:meth:`repro.p2p.overlay.ChannelOverlay.audit_depths`), and the
Channel Manager's JOIN rate limiter.

Scores decay exponentially (half-life ``half_life`` seconds) so an
honest peer that suffered a transient glitch recovers, while a peer
that keeps misbehaving crosses ``quarantine_threshold`` and is
quarantined: excluded from peer lists and repair candidate sets, and
evicted from the tree by the containment sweep
(:meth:`~repro.p2p.overlay.ChannelOverlay.contain`).  Detection and
quarantine transitions are recorded as ``kind="adversary"`` trace
spans and in :class:`~repro.metrics.adversary.MisbehaviorCounters`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.metrics.adversary import MisbehaviorCounters
from repro.trace.span import Tracer

#: Misbehavior kinds (the detection plane's vocabulary).
POLLUTION = "pollution"
MISSING_KEY = "missing_key"
REPLAY = "replay"
DEPTH_LIE = "depth_lie"
JOIN_FLOOD = "join_flood"

#: Score added per report, by kind.  Depth lies weigh double: a single
#: audit finding is already cross-checked against the measured tree,
#: so it carries more evidence than one bad packet.
DEFAULT_WEIGHTS: Dict[str, float] = {
    POLLUTION: 1.0,
    MISSING_KEY: 1.0,
    REPLAY: 1.0,
    DEPTH_LIE: 2.0,
    JOIN_FLOOD: 1.0,
}

#: Counter field bumped per kind (see MisbehaviorCounters).
_COUNTER_FIELDS: Dict[str, str] = {
    POLLUTION: "pollution_detected",
    MISSING_KEY: "missing_key_detected",
    REPLAY: "key_replays_rejected",
    DEPTH_LIE: "depth_lies_detected",
    JOIN_FLOOD: "joins_rate_limited",
}


@dataclass
class _Score:
    points: float = 0.0
    updated_at: float = 0.0
    reports: Dict[str, int] = field(default_factory=dict)


class PeerScorecard:
    """Decayed misbehavior counters and the quarantine set.

    Parameters
    ----------
    half_life:
        Seconds for a peer's score to decay by half.  Sized to a few
        key epochs: misbehavior evidence goes stale at roughly the
        rate the key schedule turns over.
    quarantine_threshold:
        Decayed score at which a peer is quarantined.
    counters:
        Shared :class:`MisbehaviorCounters` block (one per deployment).
    tracer:
        Optional tracer; detection/quarantine events become
        ``kind="adversary"`` spans.
    """

    def __init__(
        self,
        half_life: float = 120.0,
        quarantine_threshold: float = 3.0,
        counters: Optional[MisbehaviorCounters] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if half_life <= 0:
            raise ValueError("half-life must be positive")
        if quarantine_threshold <= 0:
            raise ValueError("quarantine threshold must be positive")
        self.half_life = half_life
        self.quarantine_threshold = quarantine_threshold
        self.counters = counters if counters is not None else MisbehaviorCounters()
        self.tracer = tracer
        self._scores: Dict[str, _Score] = {}
        self._quarantined: Set[str] = set()
        self._by_address: Dict[str, str] = {}
        #: ``(when, kind, peer_id)`` log in :mod:`repro.sim.faults`
        #: event style; chaos reports print it next to fault events.
        self.events: List[Tuple[float, str, str]] = []
        #: Monotone high-water mark of report times; the fallback clock
        #: for call sites without a ``now`` in scope (raw data-plane
        #: forwarding carries no timestamps).
        self._last_now = 0.0
        #: Quarantine-transition subscribers, called as
        #: ``listener(peer_id, quarantined)`` on every quarantine
        #: (True) and release (False).  Overlays subscribe so their
        #: candidate indexes track admissibility without polling.
        self._listeners: List[Callable[[str, bool], None]] = []

    # ------------------------------------------------------------------
    # Quarantine events
    # ------------------------------------------------------------------

    def add_listener(self, listener: Callable[[str, bool], None]) -> None:
        """Subscribe to quarantine/release transitions (idempotent)."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[str, bool], None]) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, peer_id: str, quarantined: bool) -> None:
        for listener in list(self._listeners):
            listener(peer_id, quarantined)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def advance(self, now: float) -> None:
        """Advance the fallback clock used by un-timestamped reports
        (the data plane has no ``now`` in scope when it attributes a
        bad packet; drivers call this once per simulation step)."""
        self._last_now = max(self._last_now, now)

    def note_address(self, peer_id: str, address: str) -> None:
        """Remember a peer's address so network-level detectors (the
        CM rate limiter sees addresses, not peer ids) can attribute."""
        self._by_address[address] = peer_id

    def peer_for_address(self, address: str) -> Optional[str]:
        return self._by_address.get(address)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(
        self,
        peer_id: str,
        kind: str,
        now: Optional[float] = None,
        weight: Optional[float] = None,
    ) -> bool:
        """Record one misbehavior observation against ``peer_id``.

        Returns True when this report *newly* quarantines the peer.
        """
        if kind not in DEFAULT_WEIGHTS:
            raise ValueError(f"unknown misbehavior kind: {kind!r}")
        when = self._clocked(now)
        score = self._scores.setdefault(peer_id, _Score(updated_at=when))
        score.points = self._decayed(score, when) + (
            DEFAULT_WEIGHTS[kind] if weight is None else weight
        )
        score.updated_at = when
        score.reports[kind] = score.reports.get(kind, 0) + 1
        field_name = _COUNTER_FIELDS[kind]
        setattr(self.counters, field_name, getattr(self.counters, field_name) + 1)
        self.events.append((when, f"detect:{kind}", peer_id))
        self._span("ADVERSARY.detect", when, peer_id, kind=kind, score=score.points)
        if peer_id not in self._quarantined and (
            score.points >= self.quarantine_threshold
        ):
            self._quarantined.add(peer_id)
            self.counters.peers_quarantined += 1
            self.events.append((when, "quarantine", peer_id))
            self._span("ADVERSARY.quarantine", when, peer_id, score=score.points)
            self._notify(peer_id, True)
            return True
        return False

    def report_address(
        self, address: str, kind: str, now: Optional[float] = None
    ) -> Optional[str]:
        """Attribute a network-level observation by address.

        Returns the resolved peer id, or None when the address is not
        a known overlay member (the observation is still counted).
        """
        peer_id = self._by_address.get(address)
        if peer_id is None:
            # Count the observation even without an overlay identity --
            # a flooder need not have joined the tree to hammer the CM.
            field_name = _COUNTER_FIELDS[kind]
            setattr(self.counters, field_name, getattr(self.counters, field_name) + 1)
            self.events.append((self._clocked(now), f"detect:{kind}", address))
            return None
        self.report(peer_id, kind, now=now)
        return peer_id

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def score(self, peer_id: str, now: Optional[float] = None) -> float:
        """The decayed score as of ``now`` (0.0 for a clean peer)."""
        record = self._scores.get(peer_id)
        if record is None:
            return 0.0
        return self._decayed(record, self._clocked(now))

    def report_counts(self, peer_id: str) -> Dict[str, int]:
        """Undecayed per-kind report tallies (forensics, tests)."""
        record = self._scores.get(peer_id)
        return dict(record.reports) if record is not None else {}

    def is_quarantined(self, peer_id: str) -> bool:
        return peer_id in self._quarantined

    def quarantined(self) -> Set[str]:
        return set(self._quarantined)

    def release(self, peer_id: str, now: Optional[float] = None) -> None:
        """Lift a quarantine (operator override); the score restarts."""
        if peer_id in self._quarantined:
            self._quarantined.discard(peer_id)
            self._scores.pop(peer_id, None)
            self.events.append((self._clocked(now), "release", peer_id))
            self._notify(peer_id, False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _decayed(self, record: _Score, now: float) -> float:
        elapsed = max(0.0, now - record.updated_at)
        if elapsed == 0.0 or record.points == 0.0:
            return record.points
        return record.points * (0.5 ** (elapsed / self.half_life))

    def _clocked(self, now: Optional[float]) -> float:
        if now is not None:
            self._last_now = max(self._last_now, now)
            return now
        return self._last_now

    def _span(self, name: str, when: float, peer_id: str, **annotations) -> None:
        if self.tracer is None:
            return
        span = self.tracer.start_span(name, now=when, kind="adversary")
        span.annotate("peer", peer_id)
        for key, value in annotations.items():
            span.annotate(key, value)
        self.tracer.finish(span, now=when)

"""Peer selection policies for the Channel Manager's peer lists.

The base overlay samples uniformly among peers with spare capacity.
Production deployments prefer *locality*: a parent in the viewer's own
region roughly halves the join RTT and keeps inter-ISP traffic down
(the simulator's :func:`repro.sim.network.peer_rtt` encodes the same
same-region/cross-region split).  This module provides two pluggable
:data:`~repro.core.channel_manager.PeerListProvider` implementations:

* :class:`RegionAwarePeerSampler` -- shuffle within region classes,
  the original locality sampler;
* :class:`RankedPeerListProvider` -- the full ranking pipeline
  (same-AS, then same-region, then spare upload capacity), which also
  serves the churn-repair path through :meth:`rank_for_repair`.

Both enforce the *same-region-fraction privacy cap*: at most that
fraction of a returned list is drawn from the requester's own
region/AS, so peer lists never become a region-partition oracle --
peer lists already reveal addresses, they should not additionally sort
the world by geography for free.

Selection is a pure ranking over the overlay's live state; it holds no
state of its own, so it composes with farms, shards, and churn.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.protocol import PeerDescriptor
from repro.p2p.overlay import ChannelOverlay
from repro.p2p.peer import Peer


def merge_with_quota(
    local: Sequence[Peer],
    remote: Sequence[Peer],
    slots: int,
    local_quota: int,
) -> Tuple[List[Peer], List[Peer]]:
    """Fill ``slots`` picks: up to ``local_quota`` from ``local``, the
    rest from ``remote``, topping back up from whichever side still has
    members when the other runs short.

    Returns ``(chosen, leftovers)`` where ``leftovers`` preserves rank
    order, so callers can keep topping up (e.g. when the source turns
    out to be saturated).  Membership is tracked by an id-set of
    ``peer_id`` -- the historical ``peer not in chosen`` list scan was
    O(n^2) and, combined with a leftover slice that offset by the quota
    rather than by how many remote peers were actually taken, could
    re-consider already-chosen peers.
    """
    slots = max(0, slots)
    local_take = min(len(local), max(0, local_quota), slots)
    chosen: List[Peer] = list(local[:local_take])
    remote_take = min(len(remote), slots - local_take)
    chosen.extend(remote[:remote_take])
    chosen_ids = {peer.peer_id for peer in chosen}
    leftovers: List[Peer] = []
    for peer in list(local[local_take:]) + list(remote[remote_take:]):
        if peer.peer_id in chosen_ids:
            continue
        if len(chosen) < slots:
            chosen.append(peer)
            chosen_ids.add(peer.peer_id)
        else:
            leftovers.append(peer)
    return chosen, leftovers


class RegionAwarePeerSampler:
    """Prefer same-region parents, then spare capacity, then luck.

    Parameters
    ----------
    overlays:
        channel id -> overlay map (the deployment's registry).
    geo:
        Database mapping a requester's address to its region.
    rng:
        Tie-breaking randomness (kept local for determinism).
    same_region_fraction:
        At most this fraction of the returned list is same-region;
        the remainder is drawn from elsewhere so a region with few
        peers still yields useful candidates (and the list never
        becomes a region-partition oracle -- a privacy point: peer
        lists already reveal addresses, they should not additionally
        sort the world by geography for free).
    """

    def __init__(
        self,
        overlays: Dict[str, ChannelOverlay],
        geo,
        rng: random.Random,
        same_region_fraction: float = 0.75,
    ) -> None:
        if not 0.0 <= same_region_fraction <= 1.0:
            raise ValueError("same_region_fraction must be a fraction")
        self._overlays = overlays
        self._geo = geo
        self._rng = rng
        self.same_region_fraction = same_region_fraction

    def __call__(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        """The PeerListProvider interface."""
        overlay = self._overlays.get(channel_id)
        if overlay is None or count <= 0:
            return []
        requester_region = self._geo.region_of(exclude_addr)
        candidates = [
            peer
            for peer in overlay.peers.values()
            if peer.alive
            and peer.spare_capacity > 0
            and peer.address != exclude_addr
            and overlay._admissible(peer)
        ]
        local = [p for p in candidates if p.region == requester_region]
        remote = [p for p in candidates if p.region != requester_region]
        self._rng.shuffle(local)
        self._rng.shuffle(remote)

        local_quota = int(round((count - 1) * self.same_region_fraction))
        chosen, leftovers = merge_with_quota(local, remote, count - 1, local_quota)
        descriptors = [peer.descriptor() for peer in chosen]
        if overlay.source.spare_capacity > 0:
            descriptors.append(overlay.source.descriptor())
        # A saturated source must not shorten the list: top back up to
        # ``count`` from the leftover candidates (rank order preserved).
        for peer in leftovers:
            if len(descriptors) >= count:
                break
            descriptors.append(peer.descriptor())
        return descriptors[:count]

    def locality_fraction(self, channel_id: str, requester_addr: str, count: int = 8) -> float:
        """Fraction of a sampled list in the requester's region (for tests)."""
        sample = self(channel_id, requester_addr, count)
        if not sample:
            return 0.0
        region = self._geo.region_of(requester_addr)
        local = sum(1 for d in sample if d.region == region)
        return local / len(sample)


class RankedPeerListProvider:
    """SWITCH2 peer lists ranked by (same-AS, same-region, spare capacity).

    The pipeline the Channel Manager runs per request:

    1. *gather* -- live members with spare capacity, requester excluded;
    2. *score* -- proximity class first (2 = same AS, 1 = same region,
       0 = elsewhere), then advertised tree depth (shallow parents cut
       startup and key-propagation latency -- and ranking by capacity
       alone would herd joiners onto the newest member, growing chains
       instead of trees), then spare upload capacity, then a random
       jitter so equally-good parents don't herd;
    3. *cap* -- the same-region-fraction privacy cap bounds how much of
       the list the requester's own region/AS may occupy;
    4. *top up* -- the source is appended as a last-resort candidate,
       and leftovers fill the list back to ``count`` when the source is
       saturated or one side of the cap runs short.

    The same scoring serves churn repair (:meth:`rank_for_repair`), so
    an orphan re-parents with the ranking its original list used.

    ``max_pool`` bounds how many candidates one request will rank:
    above it, a uniform subsample is ranked instead of the full
    membership.  This keeps per-request cost flat under flash-crowd
    load (ranking all 10k members for every one of 10k joiners is
    quadratic work for no better list) at the cost of occasionally
    missing the single globally best parent -- the subsample still
    holds hundreds of near-equivalent candidates.
    """

    def __init__(
        self,
        overlays: Dict[str, ChannelOverlay],
        geo,
        rng: random.Random,
        same_region_fraction: float = 0.75,
        max_pool: int = 512,
    ) -> None:
        if not 0.0 <= same_region_fraction <= 1.0:
            raise ValueError("same_region_fraction must be a fraction")
        if max_pool < 1:
            raise ValueError("max_pool must be positive")
        self._overlays = overlays
        self._geo = geo
        self._rng = rng
        self.same_region_fraction = same_region_fraction
        self.max_pool = max_pool

    # -- pipeline stages ------------------------------------------------

    @staticmethod
    def _gather(overlay: ChannelOverlay, exclude_addr: str) -> List[Peer]:
        return [
            peer
            for peer in overlay.peers.values()
            if peer.alive
            and peer.spare_capacity > 0
            and peer.address != exclude_addr
            and overlay._admissible(peer)
        ]

    @staticmethod
    def _proximity(peer: Peer, record) -> int:
        """2 = same AS, 1 = same region, 0 = elsewhere/unknown."""
        if record is None:
            return 0
        asn = getattr(peer, "asn", 0)
        if asn and asn == record.asn:
            return 2
        if peer.region == record.region:
            return 1
        return 0

    def _rank(self, candidates: Sequence[Peer], record) -> Tuple[List[Peer], List[Peer]]:
        """Sort by (proximity desc, depth asc, spare capacity desc,
        jitter) and split into requester-local and remote rank lists."""
        if len(candidates) > self.max_pool:
            candidates = self._rng.sample(list(candidates), self.max_pool)
        jitter = {peer.peer_id: self._rng.random() for peer in candidates}
        ordered = sorted(
            candidates,
            key=lambda peer: (
                -self._proximity(peer, record),
                getattr(peer, "depth", 0),
                -peer.spare_capacity,
                jitter[peer.peer_id],
            ),
        )
        local = [p for p in ordered if self._proximity(p, record) > 0]
        remote = [p for p in ordered if self._proximity(p, record) == 0]
        return local, remote

    # -- PeerListProvider interface -------------------------------------

    def __call__(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        overlay = self._overlays.get(channel_id)
        if overlay is None or count <= 0:
            return []
        record = self._geo.lookup(exclude_addr)
        local, remote = self._rank(self._gather(overlay, exclude_addr), record)
        local_quota = int(round((count - 1) * self.same_region_fraction))
        chosen, leftovers = merge_with_quota(local, remote, count - 1, local_quota)
        descriptors = [peer.descriptor() for peer in chosen]
        if overlay.source.spare_capacity > 0:
            descriptors.append(overlay.source.descriptor())
        for peer in leftovers:
            if len(descriptors) >= count:
                break
            descriptors.append(peer.descriptor())
        return descriptors[:count]

    # -- churn repair ---------------------------------------------------

    def rank_for_repair(
        self, requester_addr: str, candidates: Sequence[Peer], count: int
    ) -> List[PeerDescriptor]:
        """Rank an explicit candidate set (the overlay's connected,
        spare-capacity members) for an orphan's re-join.

        Matches :data:`repro.p2p.overlay.RepairRanker`.  No source
        reservation here: ``remove_peer`` appends the source itself.
        """
        record = self._geo.lookup(requester_addr)
        local, remote = self._rank(candidates, record)
        local_quota = int(round(count * self.same_region_fraction))
        chosen, _ = merge_with_quota(local, remote, count, local_quota)
        return [peer.descriptor() for peer in chosen]

    def locality_fraction(self, channel_id: str, requester_addr: str, count: int = 8) -> float:
        """Fraction of a sampled list in the requester's region (for tests)."""
        sample = self(channel_id, requester_addr, count)
        if not sample:
            return 0.0
        region = self._geo.region_of(requester_addr)
        local = sum(1 for d in sample if d.region == region)
        return local / len(sample)

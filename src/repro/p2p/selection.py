"""Peer selection policies for the Channel Manager's peer lists.

The base overlay samples uniformly among peers with spare capacity.
Production deployments prefer *locality*: a parent in the viewer's own
region roughly halves the join RTT and keeps inter-ISP traffic down
(the simulator's :func:`repro.sim.network.peer_rtt` encodes the same
same-region/cross-region split).  This module provides two pluggable
:data:`~repro.core.channel_manager.PeerListProvider` implementations:

* :class:`RegionAwarePeerSampler` -- uniform within region classes,
  the original locality sampler;
* :class:`RankedPeerListProvider` -- the full ranking pipeline
  (same-AS, then same-region, then spare upload capacity), which also
  serves the churn-repair path through :meth:`select_repair`.

Both enforce the *same-region-fraction privacy cap*: at most that
fraction of a returned list is drawn from the requester's own
region/AS, so peer lists never become a region-partition oracle --
peer lists already reveal addresses, they should not additionally sort
the world by geography for free.

Both answer requests from the overlay's incrementally-maintained
:class:`~repro.p2p.index.CandidateIndex` -- O(count + buckets.log) per
request -- with an O(n) scan retained as the *reference path*
(``use_index=False``).  The two paths are pinned byte-identical for
the ranked provider: ranking ties break on a stable per-peer keyed
hash (:func:`~repro.p2p.index.stable_jitter` under the overlay's
salt), not per-request randomness, so the same overlay state always
yields the same list from either path (the Hypothesis equivalence
suite asserts this across churn interleavings).  Herding is still
avoided: every accepted join changes the winner's spare capacity and
rotates its bucket's head before the next request.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.protocol import PeerDescriptor
from repro.metrics.selection import counters
from repro.p2p.index import stable_jitter
from repro.p2p.overlay import ChannelOverlay
from repro.p2p.peer import Peer

#: Jitter salt for :meth:`RankedPeerListProvider.rank_for_repair`, the
#: legacy explicit-candidate-set API that carries no overlay (and so no
#: per-overlay salt).  A fixed salt keeps it deterministic.
_DETACHED_SALT = b"rank-for-repair"


def merge_with_quota(
    local: Sequence[Peer],
    remote: Sequence[Peer],
    slots: int,
    local_quota: int,
) -> Tuple[List[Peer], List[Peer]]:
    """Fill ``slots`` picks: up to ``local_quota`` from ``local``, the
    rest from ``remote``, topping back up from whichever side still has
    members when the other runs short.

    Returns ``(chosen, leftovers)`` where ``leftovers`` preserves rank
    order, so callers can keep topping up (e.g. when the source turns
    out to be saturated).  Membership is tracked by an id-set of
    ``peer_id`` -- the historical ``peer not in chosen`` list scan was
    O(n^2) and, combined with a leftover slice that offset by the quota
    rather than by how many remote peers were actually taken, could
    re-consider already-chosen peers.
    """
    slots = max(0, slots)
    local_take = min(len(local), max(0, local_quota), slots)
    chosen: List[Peer] = list(local[:local_take])
    remote_take = min(len(remote), slots - local_take)
    chosen.extend(remote[:remote_take])
    chosen_ids = {peer.peer_id for peer in chosen}
    leftovers: List[Peer] = []
    for peer in list(local[local_take:]) + list(remote[remote_take:]):
        if peer.peer_id in chosen_ids:
            continue
        if len(chosen) < slots:
            chosen.append(peer)
            chosen_ids.add(peer.peer_id)
        else:
            leftovers.append(peer)
    return chosen, leftovers


class _PeerListPipeline:
    """Shared tail of both providers: cap, source slot, top-up -- and
    the ``locality_fraction`` test helper both used to duplicate."""

    _overlays: Dict[str, ChannelOverlay]
    _geo: object
    same_region_fraction: float

    def _assemble(
        self,
        overlay: ChannelOverlay,
        local: Sequence[Peer],
        remote: Sequence[Peer],
        count: int,
    ) -> List[PeerDescriptor]:
        """Privacy-cap merge, source slot, leftover top-up, truncate."""
        local_quota = int(round((count - 1) * self.same_region_fraction))
        chosen, leftovers = merge_with_quota(local, remote, count - 1, local_quota)
        descriptors = [peer.descriptor() for peer in chosen]
        if overlay.source.spare_capacity > 0:
            descriptors.append(overlay.source.descriptor())
        # A saturated source must not shorten the list: top back up to
        # ``count`` from the leftover candidates (rank order preserved).
        for peer in leftovers:
            if len(descriptors) >= count:
                break
            descriptors.append(peer.descriptor())
        return descriptors[:count]

    def locality_fraction(
        self, channel_id: str, requester_addr: str, count: int = 8
    ) -> float:
        """Fraction of a sampled list in the requester's region (for tests)."""
        sample = self(channel_id, requester_addr, count)  # type: ignore[operator]
        if not sample:
            return 0.0
        region = self._geo.region_of(requester_addr)
        local = sum(1 for d in sample if d.region == region)
        return local / len(sample)

    @staticmethod
    def _scan_eligible(
        overlay: ChannelOverlay, exclude_addr: str
    ) -> List[Peer]:
        """The reference path's full-membership gather (O(n))."""
        eligible = [
            peer
            for peer in overlay.peers.values()
            if peer.alive
            and peer.spare_capacity > 0
            and peer.address != exclude_addr
            and overlay.admissible(peer)
        ]
        counters.candidates_considered += len(eligible)
        return eligible


class RegionAwarePeerSampler(_PeerListPipeline):
    """Prefer same-region parents, then spare capacity, then luck.

    Parameters
    ----------
    overlays:
        channel id -> overlay map (the deployment's registry).
    geo:
        Database mapping a requester's address to its region.
    rng:
        Tie-breaking randomness (kept local for determinism).
    same_region_fraction:
        At most this fraction of the returned list is same-region;
        the remainder is drawn from elsewhere so a region with few
        peers still yields useful candidates (and the list never
        becomes a region-partition oracle -- a privacy point: peer
        lists already reveal addresses, they should not additionally
        sort the world by geography for free).
    use_index:
        Draw both region classes from the overlay's candidate index
        (O(count) uniform samples) instead of shuffling two full
        membership lists per call.  The scan path remains as the
        fallback for overlays without an index.
    """

    def __init__(
        self,
        overlays: Dict[str, ChannelOverlay],
        geo,
        rng: random.Random,
        same_region_fraction: float = 0.75,
        use_index: bool = True,
    ) -> None:
        if not 0.0 <= same_region_fraction <= 1.0:
            raise ValueError("same_region_fraction must be a fraction")
        self._overlays = overlays
        self._geo = geo
        self._rng = rng
        self.same_region_fraction = same_region_fraction
        self.use_index = use_index

    def __call__(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        """The PeerListProvider interface."""
        overlay = self._overlays.get(channel_id)
        if overlay is None or count <= 0:
            return []
        counters.requests += 1
        requester_region = self._geo.region_of(exclude_addr)
        index = getattr(overlay, "index", None) if self.use_index else None
        if index is not None:
            counters.index_hits += 1
            # ``count`` per side covers the worst-case consumption of
            # the merge + top-up tail (at most ``count`` from one side).
            local = index.sample_region(
                self._rng, requester_region, count, exclude_addr=exclude_addr
            )
            remote = index.sample_outside_region(
                self._rng, requester_region, count, exclude_addr=exclude_addr
            )
        else:
            counters.fallback_scans += 1
            candidates = self._scan_eligible(overlay, exclude_addr)
            local = [p for p in candidates if p.region == requester_region]
            remote = [p for p in candidates if p.region != requester_region]
            self._rng.shuffle(local)
            self._rng.shuffle(remote)
        return self._assemble(overlay, local, remote, count)


class RankedPeerListProvider(_PeerListPipeline):
    """SWITCH2 peer lists ranked by (same-AS, same-region, spare capacity).

    The pipeline the Channel Manager runs per request:

    1. *gather* -- live members with spare capacity, requester excluded;
    2. *score* -- proximity class first (2 = same AS, 1 = same region,
       0 = elsewhere), then advertised tree depth (shallow parents cut
       startup and key-propagation latency -- and ranking by capacity
       alone would herd joiners onto the newest member, growing chains
       instead of trees), then spare upload capacity, then a *stable*
       per-peer jitter (a keyed hash under the overlay's salt) so
       equally-good parents don't herd and both execution paths agree;
    3. *cap* -- the same-region-fraction privacy cap bounds how much of
       the list the requester's own region/AS may occupy;
    4. *top up* -- the source is appended as a last-resort candidate,
       and leftovers fill the list back to ``count`` when the source is
       saturated or one side of the cap runs short.

    The same scoring serves churn repair (:meth:`select_repair`), so
    an orphan re-parents with the ranking its original list used.

    With ``use_index`` (the default) the gather+score stages are a
    handful of heap pops from the overlay's
    :class:`~repro.p2p.index.CandidateIndex`; ``use_index=False`` runs
    the O(n) scan *reference path*, which is pinned byte-identical to
    the index path (the equivalence suite's whole point).  ``max_pool``
    survives as the per-side consideration bound applied identically on
    both paths -- its historical role (random subsampling to bound the
    scan's quadratic cost) is obsolete now that the index bounds
    per-request cost structurally.
    """

    def __init__(
        self,
        overlays: Dict[str, ChannelOverlay],
        geo,
        rng: random.Random,
        same_region_fraction: float = 0.75,
        max_pool: int = 512,
        use_index: bool = True,
    ) -> None:
        if not 0.0 <= same_region_fraction <= 1.0:
            raise ValueError("same_region_fraction must be a fraction")
        if max_pool < 1:
            raise ValueError("max_pool must be positive")
        self._overlays = overlays
        self._geo = geo
        self._rng = rng
        self.same_region_fraction = same_region_fraction
        self.max_pool = max_pool
        self.use_index = use_index

    # -- pipeline stages ------------------------------------------------

    @staticmethod
    def _proximity(peer: Peer, record) -> int:
        """2 = same AS, 1 = same region, 0 = elsewhere/unknown."""
        if record is None:
            return 0
        asn = getattr(peer, "asn", 0)
        if asn and asn == record.asn:
            return 2
        if peer.region == record.region:
            return 1
        return 0

    def _ranked_sides(
        self,
        overlay: ChannelOverlay,
        record,
        exclude_addr: str,
        count: int,
        accept: Optional[Callable[[Peer], bool]] = None,
    ) -> Tuple[List[Peer], List[Peer]]:
        """The requester-local and remote rank lists, each truncated to
        ``min(count, max_pool)`` -- the most either side can contribute
        to a ``count``-slot list, so truncation never changes output."""
        need = min(count, self.max_pool)
        index = getattr(overlay, "index", None) if self.use_index else None
        if index is not None:
            counters.index_hits += 1
            local = index.top_local(record, need, exclude_addr, accept=accept)
            remote = index.top_remote(record, need, exclude_addr, accept=accept)
            return local, remote
        counters.fallback_scans += 1
        candidates = self._scan_eligible(overlay, exclude_addr)
        if accept is not None:
            candidates = [peer for peer in candidates if accept(peer)]
        return self._rank_scan(candidates, record, overlay.selection_salt, need)

    def _rank_scan(
        self, candidates: Sequence[Peer], record, salt: bytes, need: int
    ) -> Tuple[List[Peer], List[Peer]]:
        """Reference ranking: sort everything by the shared key."""
        ordered = sorted(
            candidates,
            key=lambda peer: (
                -self._proximity(peer, record),
                peer.depth,
                -peer.spare_capacity,
                stable_jitter(salt, peer.peer_id),
                peer.peer_id,
            ),
        )
        local = [p for p in ordered if self._proximity(p, record) > 0][:need]
        remote = [p for p in ordered if self._proximity(p, record) == 0][:need]
        return local, remote

    # -- PeerListProvider interface -------------------------------------

    def __call__(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        overlay = self._overlays.get(channel_id)
        if overlay is None or count <= 0:
            return []
        counters.requests += 1
        record = self._geo.lookup(exclude_addr)
        local, remote = self._ranked_sides(overlay, record, exclude_addr, count)
        return self._assemble(overlay, local, remote, count)

    # -- churn repair ---------------------------------------------------

    def select_repair(
        self,
        overlay: ChannelOverlay,
        orphan: Peer,
        accept: Callable[[Peer], bool],
        count: int,
    ) -> List[PeerDescriptor]:
        """Ranked repair candidates for an orphan's re-join.

        Matches :data:`repro.p2p.overlay.RepairSelector`: the overlay
        passes its source-connectivity probe as ``accept`` and this
        provider draws the candidate set itself (index or scan -- same
        result either way).  No source reservation here:
        ``remove_peer`` appends the source itself.
        """
        counters.requests += 1
        record = self._geo.lookup(orphan.address)
        local, remote = self._ranked_sides(
            overlay, record, orphan.address, count, accept=accept
        )
        local_quota = int(round(count * self.same_region_fraction))
        chosen, _ = merge_with_quota(local, remote, count, local_quota)
        return [peer.descriptor() for peer in chosen]

    def rank_for_repair(
        self, requester_addr: str, candidates: Sequence[Peer], count: int
    ) -> List[PeerDescriptor]:
        """Rank an explicit candidate set (the overlay's connected,
        spare-capacity members) for an orphan's re-join.

        Matches :data:`repro.p2p.overlay.RepairRanker`, the legacy
        pre-index hook; :meth:`select_repair` supersedes it.  Carries
        no overlay, so ties break under a fixed module salt.
        """
        counters.requests += 1
        counters.fallback_scans += 1
        counters.candidates_considered += len(candidates)
        record = self._geo.lookup(requester_addr)
        local, remote = self._rank_scan(
            candidates, record, _DETACHED_SALT, min(count, self.max_pool)
        )
        local_quota = int(round(count * self.same_region_fraction))
        chosen, _ = merge_with_quota(local, remote, count, local_quota)
        return [peer.descriptor() for peer in chosen]

"""Peer selection policies for the Channel Manager's peer lists.

The base overlay samples uniformly among peers with spare capacity.
Production deployments prefer *locality*: a parent in the viewer's own
region roughly halves the join RTT and keeps inter-ISP traffic down
(the simulator's :func:`repro.sim.network.peer_rtt` encodes the same
same-region/cross-region split).  This module provides a region-aware
sampler that can be plugged in as the Channel Manager's
:data:`~repro.core.channel_manager.PeerListProvider`.

Selection is a pure ranking over the overlay's live state; it holds no
state of its own, so it composes with farms and with churn.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.protocol import PeerDescriptor
from repro.p2p.overlay import ChannelOverlay


class RegionAwarePeerSampler:
    """Prefer same-region parents, then spare capacity, then luck.

    Parameters
    ----------
    overlays:
        channel id -> overlay map (the deployment's registry).
    geo:
        Database mapping a requester's address to its region.
    rng:
        Tie-breaking randomness (kept local for determinism).
    same_region_fraction:
        At most this fraction of the returned list is same-region;
        the remainder is drawn from elsewhere so a region with few
        peers still yields useful candidates (and the list never
        becomes a region-partition oracle -- a privacy point: peer
        lists already reveal addresses, they should not additionally
        sort the world by geography for free).
    """

    def __init__(
        self,
        overlays: Dict[str, ChannelOverlay],
        geo,
        rng: random.Random,
        same_region_fraction: float = 0.75,
    ) -> None:
        if not 0.0 <= same_region_fraction <= 1.0:
            raise ValueError("same_region_fraction must be a fraction")
        self._overlays = overlays
        self._geo = geo
        self._rng = rng
        self.same_region_fraction = same_region_fraction

    def __call__(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        """The PeerListProvider interface."""
        overlay = self._overlays.get(channel_id)
        if overlay is None or count <= 0:
            return []
        requester_region = self._geo.region_of(exclude_addr)
        candidates = [
            peer
            for peer in overlay.peers.values()
            if peer.alive and peer.spare_capacity > 0 and peer.address != exclude_addr
        ]
        local = [p for p in candidates if p.region == requester_region]
        remote = [p for p in candidates if p.region != requester_region]
        self._rng.shuffle(local)
        self._rng.shuffle(remote)

        local_quota = int(round((count - 1) * self.same_region_fraction))
        chosen = local[:local_quota]
        chosen += remote[: (count - 1) - len(chosen)]
        if len(chosen) < count - 1:  # top back up from whichever side has more
            leftovers = local[local_quota:] + remote[(count - 1) - local_quota :]
            for peer in leftovers:
                if len(chosen) >= count - 1:
                    break
                if peer not in chosen:
                    chosen.append(peer)
        descriptors = [peer.descriptor() for peer in chosen]
        if overlay.source.spare_capacity > 0:
            descriptors.append(overlay.source.descriptor())
        return descriptors[:count]

    def locality_fraction(self, channel_id: str, requester_addr: str, count: int = 8) -> float:
        """Fraction of a sampled list in the requester's region (for tests)."""
        sample = self(channel_id, requester_addr, count)
        if not sample:
            return 0.0
        region = self._geo.region_of(requester_addr)
        local = sum(1 for d in sample if d.region == region)
        return local / len(sample)

"""Peer-division multiplexing: the sub-stream model of reference [6].

The production overlay splits each channel's stream into ``k``
sub-streams; a receiver may draw different sub-streams from different
parents, dividing its download across peers ("receiver-based
peer-division multiplexing").  The DRM consequence the paper calls out
(Section IV-E) is duplicate content-key delivery: a peer with several
parents receives the same rotating key once per parent and discards
duplicates by serial.

:class:`SubstreamAssignment` maps packet sequence numbers to
sub-streams; :class:`ParentPlan` tracks which parent serves which
sub-stream for one receiver and reports gaps after churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class SubstreamAssignment:
    """Round-robin packet-to-substream mapping."""

    count: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError("need at least one sub-stream")

    def substream_of(self, sequence: int) -> int:
        """Which sub-stream carries packet ``sequence``."""
        return sequence % self.count

    def substreams(self) -> List[int]:
        """All sub-stream indices."""
        return list(range(self.count))


@dataclass
class ParentPlan:
    """One receiver's mapping of sub-streams to parents.

    The plan is complete when every sub-stream has a parent; churn
    leaves *gaps* the receiver must repair by re-joining (fetching a
    fresh peer list from the Channel Manager if its known peers are
    exhausted).
    """

    assignment: SubstreamAssignment
    parents: Dict[int, str] = field(default_factory=dict)

    def assign(self, substream: int, parent_id: str) -> None:
        """Serve ``substream`` from ``parent_id``."""
        if substream not in range(self.assignment.count):
            raise ValueError(f"no such sub-stream: {substream}")
        self.parents[substream] = parent_id

    def assign_all(self, parent_id: str) -> None:
        """Single-parent mode: one parent serves everything."""
        for substream in self.assignment.substreams():
            self.parents[substream] = parent_id

    def parent_of(self, substream: int) -> Optional[str]:
        """The parent serving a sub-stream, if any."""
        return self.parents.get(substream)

    def drop_parent(self, parent_id: str) -> List[int]:
        """Remove a departed parent; returns the orphaned sub-streams."""
        orphaned = [s for s, p in self.parents.items() if p == parent_id]
        for substream in orphaned:
            del self.parents[substream]
        return orphaned

    def gaps(self) -> List[int]:
        """Sub-streams currently without a parent."""
        return [s for s in self.assignment.substreams() if s not in self.parents]

    @property
    def complete(self) -> bool:
        """Is every sub-stream served?"""
        return not self.gaps()

    def distinct_parents(self) -> Set[str]:
        """The set of parents in use (size > 1 implies duplicate keys)."""
        return set(self.parents.values())

    def substreams_from(self, parent_id: str) -> List[int]:
        """Sub-streams drawn from one parent (for the uplink filter)."""
        return sorted(s for s, p in self.parents.items() if p == parent_id)

"""Byzantine peer injection: misbehaving overlay members on demand.

The paper's premise is that overlay peers are *untrusted* -- the DRM
must hold even when a peer tampers with content, withholds or replays
keys, or games parent selection.  This module supplies those peers:
:class:`AdversarialPeer` is a drop-in :class:`~repro.p2p.peer.Peer`
whose misbehaviors are switched on by a declarative
:class:`AdversaryConfig` schedule (in :mod:`repro.sim.faults` style),
and :class:`MisbehavingKeySender` does the same for the reliable
key-delivery layer.

Every injected misbehavior is also *recorded* (``injection_log``,
``tampered_ids``) so chaos scenarios can assert ground truth: a
tampered packet is identified by its ``(serial, sequence)`` and the
invariant "no honest client ever successfully decrypted a tampered
packet" is checked against that set, not against a heuristic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from repro.core.keystream import ContentKey
from repro.core.packets import ContentPacket, tampered_copy
from repro.core.protocol import KeyUpdate, PeerDescriptor
from repro.p2p.peer import Peer
from repro.p2p.reliable import ReliableKeySender


@dataclass(frozen=True)
class AdversaryConfig:
    """Declarative misbehavior schedule for one adversarial peer.

    All behaviors are off by default; a config with everything off is
    an honest peer.  ``start``/``stop`` bound the active window in
    simulation time, so a scenario can let an adversary behave well,
    earn children, and *then* turn -- the hardest case for detection.
    """

    #: Probability (0..1) of forwarding a polluted copy of each packet.
    tamper_packets: float = 0.0
    #: Never push key updates to children (key withholding).
    withhold_keys: bool = False
    #: Push the *oldest* ring key instead of the fresh one (children
    #: limp along until the stale serial ages out of their ring).
    stale_keys: bool = False
    #: Re-push the stalest key ever seen alongside every fresh one
    #: (serial replay: the old update re-enters the cascade long after
    #: its dedup marker and ring slot aged out).
    replay_keys: bool = False
    #: Advertise this fixed depth regardless of true tree position
    #: (None = honest).  Shallow lies game the ranked parent pipeline.
    lie_depth: Optional[int] = None
    #: Advertise this spare capacity regardless of truth (None = honest).
    lie_capacity: Optional[int] = None
    #: Misbehavior window; outside it the peer is honest.
    start: float = 0.0
    stop: float = float("inf")

    def active(self, now: float) -> bool:
        return self.start <= now < self.stop

    def misbehaves(self) -> bool:
        return (
            self.tamper_packets > 0.0
            or self.withhold_keys
            or self.stale_keys
            or self.replay_keys
            or self.lie_depth is not None
            or self.lie_capacity is not None
        )


class AdversarialPeer(Peer):
    """A Peer that misbehaves per its :class:`AdversaryConfig`.

    The adversary is an *authorized* viewer gone bad -- it holds a
    valid Channel Ticket and real keys (the paper's threat model:
    admission control cannot stop a paying subscriber from
    misbehaving).  What it cannot do is forge AEAD tags or mint keys,
    so its pollution is detectable and its replays are stale.
    """

    def __init__(self, *args, config: AdversaryConfig, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.config = config
        #: ``(when-ish ordering, kind, detail)`` ground-truth log of
        #: every injected misbehavior, for scenario assertions.
        self.injection_log: List[Tuple[str, str]] = []
        #: ``(serial, sequence)`` of every tampered packet this peer
        #: ever forwarded -- the pollution ground truth.
        self.tampered_ids: Set[Tuple[int, int]] = set()
        #: The exact polluted ciphertexts.  The honest copy of a
        #: tampered packet shares its (serial, sequence) -- other
        #: subtrees legitimately decrypt it -- so "no tampered packet
        #: ever decrypts" must be asserted against the polluted
        #: *bytes*, not the packet id.
        self.tampered_blobs: Set[bytes] = set()
        #: Old updates cached for replay, per child user id.
        self._replay_cache: List[ContentKey] = []
        self._clock = 0.0

    # -- clock ----------------------------------------------------------

    def _note_time(self, now: float) -> None:
        self._clock = max(self._clock, now)

    @property
    def _active(self) -> bool:
        return self.config.active(self._clock)

    # -- ranking lies ---------------------------------------------------

    def descriptor(self) -> PeerDescriptor:
        honest = super().descriptor()
        if not self._active:
            return honest
        depth_lie = self.config.lie_depth
        capacity_lie = self.config.lie_capacity
        if depth_lie is None and capacity_lie is None:
            return honest
        self.injection_log.append(("lie_descriptor", self.peer_id))
        return PeerDescriptor(
            peer_id=honest.peer_id,
            address=honest.address,
            region=honest.region,
            asn=honest.asn,
            spare_capacity=(
                capacity_lie if capacity_lie is not None else honest.spare_capacity
            ),
        )

    def _adopt_heartbeat_depth(self, update: KeyUpdate) -> None:
        # An honest peer refreshes its depth from the heartbeat; a
        # depth liar pins the advertised lie instead.  (The *ranking*
        # reads ``peer.depth``, so the pin is what games it.)
        if self._active and self.config.lie_depth is not None:
            self.depth = self.config.lie_depth
            return
        super()._adopt_heartbeat_depth(update)

    # -- data-plane pollution -------------------------------------------

    def forward_packet(self, packet: ContentPacket, substream_count: int = 1) -> int:
        if self._active and self.config.tamper_packets > 0.0:
            if self._drbg.fork(
                b"tamper" + packet.sequence.to_bytes(8, "big")
            ).randbelow(1000) < int(self.config.tamper_packets * 1000):
                bad = tampered_copy(packet, flip_byte=packet.sequence % 7)
                self.tampered_ids.add((bad.serial, bad.sequence))
                self.tampered_blobs.add(bad.ciphertext)
                self.injection_log.append(
                    ("tamper", f"{bad.serial}:{bad.sequence}")
                )
                return super().forward_packet(bad, substream_count)
        return super().forward_packet(packet, substream_count)

    def deliver_packet(self, packet, substream_count=1, from_peer=None) -> None:
        # An adversary never *reports* anyone (it has no standing in
        # the detection plane) but otherwise consumes normally.
        scorecard, self.scorecard = self.scorecard, None
        try:
            super().deliver_packet(packet, substream_count, from_peer=from_peer)
        finally:
            self.scorecard = scorecard

    # -- key-plane misbehavior ------------------------------------------

    def _push_key_to_children(self, content_key: ContentKey, now: float) -> int:
        self._note_time(now)
        if not self._active:
            return super()._push_key_to_children(content_key, now)
        if self.config.withhold_keys:
            self.injection_log.append(("withhold", str(content_key.serial)))
            return 0
        if self.config.replay_keys:
            # Honest pass-through first (children keep playing -- the
            # attack is the stale injection, not starvation), then the
            # stalest key ever cached rides along as a replay.
            sent = super()._push_key_to_children(content_key, now)
            if self._replay_cache:
                stale = self._replay_cache[0]
                self.injection_log.append(("replay", str(stale.serial)))
                sent += super()._push_key_to_children(stale, now)
            self._replay_cache.append(content_key)
            return sent
        if self.config.stale_keys:
            serials = self.client.key_ring.serials()
            if serials:
                stale = self.client.key_ring.get(serials[0])
                if stale.serial != content_key.serial:
                    self.injection_log.append(("stale", str(stale.serial)))
                    return super()._push_key_to_children(stale, now)
            return super()._push_key_to_children(content_key, now)
        return super()._push_key_to_children(content_key, now)

    def receive_key_update(self, update: KeyUpdate, parent: Peer, now: float) -> int:
        self._note_time(now)
        return super().receive_key_update(update, parent, now)


class MisbehavingKeySender(ReliableKeySender):
    """A :class:`ReliableKeySender` that withholds, delays, or replays.

    The unit-level twin of the peer-cascade misbehaviors: exercises
    the reliable-delivery layer's own defenses (receiver dedup,
    activation-deadline abandonment) without a whole overlay.
    """

    def __init__(
        self,
        *args,
        withhold: bool = False,
        delay: float = 0.0,
        replay: bool = False,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.withhold = withhold
        self.delay = delay
        self.replay = replay
        self.injection_log: List[Tuple[str, str]] = []
        self._old_updates: List[KeyUpdate] = []

    def send(self, update: KeyUpdate) -> None:
        if self.withhold:
            self.injection_log.append(("withhold", str(update.serial)))
            return
        if self.replay and self._old_updates:
            stale = self._old_updates[0]
            self.injection_log.append(("replay", str(stale.serial)))
            # Clear our own stop-and-wait marker first: an adversary
            # controls its sender state, so the honest "already acked,
            # don't retransmit" guard does not protect the receiver.
            self._acked.pop((stale.serial, stale.activate_at), None)
            super().send(stale)
        self._old_updates.append(update)
        if self.delay > 0.0:
            self.injection_log.append(("delay", str(update.serial)))
            self.link.sim.schedule(self.delay, lambda sim: super(
                MisbehavingKeySender, self
            ).send(update))
            return
        super().send(update)

"""Per-channel overlay: registry, tree construction, repair, sampling.

One :class:`ChannelOverlay` corresponds to one broadcast channel's P2P
network (Section III: "each broadcast channel is carried over its own
P2P overlay network").  The overlay's root is the Channel Server,
modelled as a :class:`SourcePeer` that admits joiners with the same
Channel-Ticket checks as any peer, rotates the content key on
schedule, and pushes packets/keys down the tree.

The overlay also provides the Channel Manager's peer-list sampler --
the unsigned list of candidate parents returned in SWITCH2 -- and the
churn-repair path: when a peer leaves, its orphaned children re-join
through fresh candidates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.channel_server import ChannelServer
from repro.core.keystream import ContentKeyRing
from repro.core.protocol import JoinAccept, PeerDescriptor
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPublicKey
from repro.errors import CapacityError, OverlayError
from repro.p2p.index import CandidateIndex
from repro.p2p.peer import Peer
from repro.p2p.scorecard import DEPTH_LIE
from repro.p2p.substreams import ParentPlan, SubstreamAssignment


class _SourceEndpoint:
    """Adapter giving the Channel Server the slice of the Client
    interface that :class:`Peer` needs (address, key ring, no-ops)."""

    def __init__(self, server: ChannelServer, address: str) -> None:
        self._server = server
        self.net_addr = address
        self.key_ring = ContentKeyRing()

    def receive_packet(self, packet) -> bytes:  # pragma: no cover - trivial
        return b""

    def receive_key_update(self, update, parent_id: str) -> bool:  # pragma: no cover
        raise OverlayError("the source has no parents")

    def drop_parent(self, peer_id: str) -> None:  # pragma: no cover - trivial
        pass


class SourcePeer(Peer):
    """The overlay root: the Channel Server in peer clothing.

    Key material comes straight from the server's schedule rather than
    from a parent, and :meth:`tick` drives rotation: once the upcoming
    key enters its lead window it is pushed down the whole tree.
    """

    def __init__(
        self,
        server: ChannelServer,
        address: str,
        cm_public_key: RsaPublicKey,
        drbg: HmacDrbg,
        capacity: int = 16,
        region: str = "dc",
    ) -> None:
        endpoint = _SourceEndpoint(server, address)
        super().__init__(
            peer_id=f"source:{server.channel_id}",
            client=endpoint,  # type: ignore[arg-type]
            channel_id=server.channel_id,
            cm_public_key=cm_public_key,
            drbg=drbg,
            capacity=capacity,
            region=region,
        )
        self.server = server
        self._pushed_serials: set = set()

    def current_content_key(self, now: float):
        """Joiners get the server's live key, not a ring lookup."""
        return self.server.current_key(now)

    def tick(self, now: float) -> int:
        """Rotate/push keys that have entered their distribution window.

        Returns the number of link messages generated.  Idempotent per
        serial: each key is pushed once.
        """
        sent = 0
        for content_key in self.server.keys_for_join(now):
            marker = (content_key.serial, content_key.activate_at)
            if marker in self._pushed_serials:
                continue
            self._pushed_serials.add(marker)
            sent += self.push_key_to_children(content_key, now)
        return sent

    def broadcast_packet(self, now: float, substream_count: int = 1) -> int:
        """Emit one encrypted packet from the server and forward it."""
        packet = self.server.emit_packet(now)
        return self.forward_packet(packet, substream_count)

    def broadcast_packets(
        self, now: float, count: int, substream_count: int = 1
    ) -> int:
        """Emit and forward a whole batch of packets (e.g. one GOP).

        The server seals all ``count`` frames in one batched call
        (:meth:`~repro.core.channel_server.ChannelServer.emit_packets`),
        then each packet is forwarded down the tree.  Returns the total
        number of child deliveries across the batch.
        """
        reached = 0
        for packet in self.server.emit_packets(now, count):
            reached += self.forward_packet(packet, substream_count)
        return reached


@dataclass(frozen=True)
class RepairRecord:
    """One orphan's outcome during churn repair (see ``remove_peer``)."""

    orphan_id: str
    parent_id: Optional[str]  # None = repair failed, peer stays orphaned
    attempts: int
    same_region: bool


#: Ranks an explicit candidate set for churn repair: (orphan address,
#: connected spare-capacity peers, count) -> ordered descriptors.
RepairRanker = Callable[[str, List[Peer], int], List[PeerDescriptor]]

#: Index-era churn-repair hook: (overlay, orphan, accept, count) ->
#: ordered descriptors.  Unlike :data:`RepairRanker` the selector
#: builds its own candidate set (from the overlay's candidate index),
#: filtered through ``accept`` -- the overlay's source-connectivity
#: probe -- so repair never needs the O(n) eligible scan.
RepairSelector = Callable[
    ["ChannelOverlay", Peer, Callable[[Peer], bool], int], List[PeerDescriptor]
]


class BoundedLog:
    """A ring buffer with list semantics plus drop accounting.

    The repair log used to be a bare ``List[RepairRecord]``, which a
    week-long storm grows without limit.  This keeps the most recent
    ``maxlen`` records, counts what it sheds (``dropped``), and tracks
    the all-time append count (``total``) so windowed consumers can
    mark a position with ``mark = log.total`` and later drain
    ``log.since(mark)`` -- correct even when the window's oldest
    records were dropped in between (unlike a ``len()`` mark, which
    shifts as the ring sheds).
    """

    def __init__(self, maxlen: int = 10_000) -> None:
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.maxlen = maxlen
        self._records: List = []
        #: Records shed to honor ``maxlen`` (oldest-first).
        self.dropped = 0
        #: All-time appends (surviving + dropped).
        self.total = 0

    def append(self, record) -> None:
        self._records.append(record)
        self.total += 1
        overflow = len(self._records) - self.maxlen
        if overflow > 0:
            del self._records[:overflow]
            self.dropped += overflow

    def since(self, mark: int) -> List:
        """Records appended after ``total`` was ``mark``.

        If the ring already shed part of that window, the surviving
        suffix is returned (the caller can detect shortfall by
        comparing ``len(result)`` against ``log.total - mark``).
        """
        wanted = self.total - mark
        if wanted <= 0:
            return []
        if wanted >= len(self._records):
            return list(self._records)
        return self._records[len(self._records) - wanted :]

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __bool__(self) -> bool:
        return bool(self._records)


class ChannelOverlay:
    """All peers carrying one channel, rooted at the Channel Server."""

    def __init__(
        self,
        server: ChannelServer,
        cm_public_key: RsaPublicKey,
        drbg: HmacDrbg,
        rng: random.Random,
        source_address: str = "10.0.0.1",
        source_capacity: int = 16,
        substream_count: int = 1,
    ) -> None:
        self.channel_id = server.channel_id
        self.substreams = SubstreamAssignment(substream_count)
        self.source = SourcePeer(
            server,
            address=source_address,
            cm_public_key=cm_public_key,
            drbg=drbg.fork(b"source"),
            capacity=source_capacity,
        )
        self._rng = rng
        self.peers: Dict[str, Peer] = {}
        self.plans: Dict[str, ParentPlan] = {}
        self.join_attempts = 0
        self.repairs = 0
        #: Per-overlay jitter salt for the deterministic ranking
        #: tiebreak (:func:`repro.p2p.index.stable_jitter`).  Derived
        #: from the overlay's own DRBG fork *after* the source fork so
        #: adding it shifted no pre-existing key material.
        self.selection_salt = drbg.fork(b"selection-salt").generate(16)
        #: The incrementally-maintained candidate index.  The overlay
        #: is its single writer: registration, departure, capacity
        #: deltas, depth heartbeats, and quarantine transitions all
        #: publish updates (peers carry a ``membership_listener`` that
        #: routes back here).  Selection providers read it via
        #: ``overlay.index``; ``verify_against(overlay)`` self-checks.
        self.index = CandidateIndex(salt=self.selection_salt)
        #: When set, churn repair ranks its candidate list through this
        #: hook (the deployment wires the same locality/capacity ranking
        #: that builds SWITCH2 lists); None = legacy uniform shuffle.
        #: Superseded by :data:`repair_selector` when both are set.
        self.repair_ranker: Optional[RepairRanker] = None
        #: Index-era repair hook (see :data:`RepairSelector`); preferred
        #: over ``repair_ranker`` because it avoids the O(n) per-orphan
        #: eligible scan.  None = fall back to ranker / uniform.
        self.repair_selector: Optional[RepairSelector] = None
        #: One record per orphan processed by :meth:`remove_peer`; the
        #: flash-crowd driver drains this to price repair time.  Bounded:
        #: long storms shed the oldest records (``repair_log.dropped``
        #: counts the shed) instead of growing without limit.
        self.repair_log = BoundedLog(maxlen=10_000)
        #: Shared PeerScorecard, attached by
        #: Deployment.enable_misbehavior_detection().  When present,
        #: quarantined peers are excluded from peer lists and repair
        #: candidates, and :meth:`contain` evicts them.  A property:
        #: attaching subscribes the candidate index to quarantine and
        #: release transitions.
        self._scorecard = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def register_peer(self, peer: Peer) -> None:
        """Add a ticketed peer to the overlay registry.

        Registration makes the overlay the peer's membership-event
        sink: every subsequent capacity/depth/liveness change the peer
        publishes flows into the candidate index.  Idempotent (churn
        repair re-registers orphans that never left)."""
        if peer.channel_id != self.channel_id:
            raise OverlayError(
                f"peer carries {peer.channel_id!r}, overlay is {self.channel_id!r}"
            )
        self.peers[peer.peer_id] = peer
        if self._scorecard is not None:
            peer.scorecard = self._scorecard
            self._scorecard.note_address(peer.peer_id, peer.address)
        peer.membership_listener = self._on_membership_event
        self.index.add_peer(peer, admissible=self.admissible(peer))

    @property
    def scorecard(self):
        return self._scorecard

    @scorecard.setter
    def scorecard(self, value) -> None:
        if value is self._scorecard:
            return
        old = self._scorecard
        self._scorecard = value
        if old is not None:
            old.remove_listener(self._on_quarantine_event)
        if value is not None:
            value.add_listener(self._on_quarantine_event)
        # Attaching (or swapping) a detection plane can change any
        # member's admissibility: refresh the index's cached flags.
        for peer in self.peers.values():
            self.index.set_admissible(peer.peer_id, self.admissible(peer))

    def _on_membership_event(self, peer: Peer) -> None:
        """A registered peer's rankable state changed; index absorbs it."""
        self.index.update_peer(peer)

    def _on_quarantine_event(self, peer_id: str, quarantined: bool) -> None:
        if peer_id in self.peers:
            self.index.set_admissible(peer_id, not quarantined)

    def admissible(self, peer: Peer) -> bool:
        """False when the detection plane has quarantined this peer."""
        return self._scorecard is None or not self._scorecard.is_quarantined(
            peer.peer_id
        )

    # Pre-index spelling, kept for external callers.
    _admissible = admissible

    def lookup(self, peer_id: str) -> Peer:
        """Resolve a peer id (including the source)."""
        if peer_id == self.source.peer_id:
            return self.source
        peer = self.peers.get(peer_id)
        if peer is None:
            raise OverlayError(f"unknown peer: {peer_id}")
        return peer

    @property
    def size(self) -> int:
        """Number of member peers (excluding the source)."""
        return len(self.peers)

    # ------------------------------------------------------------------
    # Peer-list sampling (plugs into the Channel Manager)
    # ------------------------------------------------------------------

    def sample_peers(
        self, channel_id: str, exclude_addr: str, count: int
    ) -> List[PeerDescriptor]:
        """Candidate parents for a joiner: spare capacity, not itself.

        Matches the :data:`~repro.core.channel_manager.PeerListProvider`
        signature.  The source is included as a last-resort candidate
        (early joiners have nobody else).
        """
        if channel_id != self.channel_id or count <= 0:
            return []
        # The index's randomized member sets make this O(count): a
        # uniform sample without replacement, not a full-membership
        # shuffle.  One extra candidate is drawn beyond the source's
        # reserved slot so a saturated source does not shorten the list.
        candidates = self.index.sample_eligible(
            self._rng, count, exclude_addr=exclude_addr
        )
        chosen = candidates[: max(0, count - 1)]
        descriptors = [peer.descriptor() for peer in chosen]
        if self.source.spare_capacity > 0:
            descriptors.append(self.source.descriptor())
        # The slot held back for the source must not shorten the list
        # when the source is saturated: top back up to ``count`` from
        # the candidates that did not make the first cut.
        for peer in candidates[len(chosen):]:
            if len(descriptors) >= count:
                break
            descriptors.append(peer.descriptor())
        return descriptors[:count]

    # ------------------------------------------------------------------
    # Join orchestration
    # ------------------------------------------------------------------

    def join(
        self,
        peer: Peer,
        candidates: Sequence[PeerDescriptor],
        now: float,
    ) -> "tuple[Peer, int]":
        """Walk the peer list until a parent accepts; wire the link.

        Returns (parent, attempts).  Raises :class:`CapacityError` when
        every candidate refuses -- the client would then go back to the
        Channel Manager for a fresh list.
        """
        # A *fresh* join (the peer is not currently a member) must not
        # inherit a plan from a prior failed/partial attempt: stale
        # sub-stream mappings would point at parents that never accepted
        # this time, and the gap-filling below would silently keep them.
        # Orphan repair (peer still registered) relies on gap-filling
        # and is left untouched.
        if peer.peer_id not in self.peers:
            self._discard_stale_plan(peer)
        attempts = 0
        for descriptor in candidates:
            try:
                target = self.lookup(descriptor.peer_id)
            except OverlayError:
                continue  # candidate churned away since the list was made
            if not target.alive:
                continue
            attempts += 1
            self.join_attempts += 1
            try:
                accept = peer.client.join_peer(target, now)
            except CapacityError:
                continue
            assert isinstance(accept, JoinAccept)
            target.bind_child_peer(peer.client.channel_ticket.user_id, peer)
            self.register_peer(peer)
            peer.depth = target.depth + 1
            plan = self.plans.setdefault(
                peer.peer_id, ParentPlan(assignment=self.substreams)
            )
            for substream in self.substreams.substreams():
                if plan.parent_of(substream) is None:
                    plan.assign(substream, target.peer_id)
            target.set_child_substreams(
                peer.client.channel_ticket.user_id,
                plan.substreams_from(target.peer_id),
            )
            return target, attempts
        raise CapacityError(
            f"no candidate accepted peer {peer.peer_id} after {attempts} attempts"
        )

    def join_via_channel_manager(self, peer: Peer, peers: Sequence[PeerDescriptor], now: float):
        """Convenience alias used by examples: join off a SWITCH2 list."""
        return self.join(peer, peers, now)

    def join_multiparent(
        self,
        peer: Peer,
        candidates: Sequence[PeerDescriptor],
        now: float,
        max_parents: Optional[int] = None,
    ) -> "tuple[List[Peer], int]":
        """Receiver-based peer-division multiplexing join (ref [6]).

        Spreads the channel's sub-streams over up to ``max_parents``
        distinct parents (default: one per sub-stream when possible).
        Each parent link runs the full JOIN admission -- the Channel
        Ticket is presented once per parent, and per Section IV-E the
        peer will consequently receive each rotating content key once
        per parent, discarding duplicates by serial.

        Returns (parents, attempts).  Falls back to fewer parents when
        candidates run out; raises :class:`CapacityError` only if *no*
        parent accepted.
        """
        substream_count = self.substreams.count
        target_parents = min(
            max_parents or substream_count, substream_count, max(1, len(candidates))
        )
        # A (re)join starts from a clean slate: a plan left over from a
        # prior failed or partial attempt would keep sub-streams mapped
        # to a parent that never accepted this time.  The fresh plan is
        # only installed below once at least one parent has accepted, so
        # a fully refused join leaves no ghost entry behind either.
        self._discard_stale_plan(peer)
        plan = ParentPlan(assignment=self.substreams)
        parents: List[Peer] = []
        attempts = 0
        user_id = peer.client.channel_ticket.user_id
        for descriptor in candidates:
            if len(parents) >= target_parents:
                break
            try:
                target = self.lookup(descriptor.peer_id)
            except OverlayError:
                continue
            if any(p.peer_id == target.peer_id for p in parents):
                continue
            attempts += 1
            self.join_attempts += 1
            try:
                peer.client.join_peer(target, now)
            except CapacityError:
                continue
            target.bind_child_peer(user_id, peer)
            parents.append(target)
        if not parents:
            raise CapacityError(
                f"no candidate accepted peer {peer.peer_id} after {attempts} attempts"
            )
        self.register_peer(peer)
        self.plans[peer.peer_id] = plan
        peer.depth = 1 + min(parent.depth for parent in parents)
        # Distribute sub-streams over the accepted parents weighted by
        # their remaining upload capacity: every parent carries at least
        # one sub-stream (it admitted the join and holds a child slot),
        # the rest go preferentially to parents with spare uplink.  With
        # equal capacities this degenerates to the former round-robin.
        quotas = self._substream_quotas(parents, substream_count)
        cursor = 0
        for substream in self.substreams.substreams():
            while quotas[cursor % len(parents)] <= 0:
                cursor += 1
            plan.assign(substream, parents[cursor % len(parents)].peer_id)
            quotas[cursor % len(parents)] -= 1
            cursor += 1
        for parent in parents:
            parent.set_child_substreams(user_id, plan.substreams_from(parent.peer_id))
        return parents, attempts

    @staticmethod
    def _substream_quotas(parents: List[Peer], substream_count: int) -> List[int]:
        """How many sub-streams each accepted parent should carry.

        Each parent gets one; the remainder is split proportionally to
        remaining upload capacity (largest-remainder rounding, ties by
        acceptance order so the result is deterministic).
        """
        quotas = [1] * len(parents)
        extra = substream_count - len(parents)
        if extra <= 0:
            return quotas
        weights = [max(1, parent.spare_capacity + 1) for parent in parents]
        total = float(sum(weights))
        shares = [extra * weight / total for weight in weights]
        floors = [int(share) for share in shares]
        for index, floor in enumerate(floors):
            quotas[index] += floor
        remainder_order = sorted(
            range(len(parents)),
            key=lambda index: (floors[index] - shares[index], index),
        )
        for index in remainder_order[: extra - sum(floors)]:
            quotas[index] += 1
        return quotas

    def _discard_stale_plan(self, peer: Peer) -> None:
        """Forget a peer's previous parent plan and detach its links.

        Any parent still holding a child link from the discarded plan
        would otherwise keep feeding keys/packets to a join attempt
        that superseded it.
        """
        stale = self.plans.pop(peer.peer_id, None)
        if stale is None:
            return
        ticket = peer.client.channel_ticket
        if ticket is None:
            return
        for parent_id in set(stale.parents.values()):
            try:
                self.lookup(parent_id).detach_child_link(ticket.user_id)
            except OverlayError:
                continue  # parent already churned away

    # ------------------------------------------------------------------
    # Churn and repair
    # ------------------------------------------------------------------

    def remove_peer(self, peer_id: str, now: float) -> List[str]:
        """A peer leaves; orphaned children re-join through fresh lists.

        Returns the ids of repaired (re-parented) peers.  A child that
        cannot find a parent stays orphaned and is reported by
        :meth:`orphans`.
        """
        peer = self.peers.pop(peer_id, None)
        if peer is None:
            raise OverlayError(f"unknown peer: {peer_id}")
        self.index.remove_peer(peer_id)
        peer.membership_listener = None
        departing_plan = self.plans.pop(peer_id, None)
        # Detach the departing peer from its parents' children maps --
        # otherwise the stale links keep feeding it keys/packets and,
        # worse, a later parent departure would hand the dead peer to
        # the repair machinery as an "orphan".
        if departing_plan is not None and peer.client.channel_ticket is not None:
            departing_uid = peer.client.channel_ticket.user_id
            for parent_id in set(departing_plan.parents.values()):
                try:
                    self.lookup(parent_id).detach_child_link(departing_uid)
                except OverlayError:
                    continue  # parent itself already gone
        orphans = peer.leave()
        repaired: List[str] = []
        for orphan in orphans:
            plan = self.plans.get(orphan.peer_id)
            if plan is not None:
                plan.drop_parent(peer_id)
            # Only source-reachable candidates are safe parents: wiring
            # two simultaneous orphans to each other (or to a detached
            # descendant) would orphan an island.  The probe answers
            # per-candidate reachability by walking parent links up
            # toward the source with memoization -- O(depth) per
            # candidate instead of the former per-orphan O(n) BFS.
            # Fresh per orphan: each repair rewires the graph.
            probe = self._connectivity_probe()

            def accept(member: Peer, _probe=probe) -> bool:
                return _probe(member.peer_id)

            if self.repair_selector is not None:
                # Repair reuses the same locality/capacity ranking that
                # built the orphan's original SWITCH2 list, drawn from
                # the candidate index.
                candidates = list(
                    self.repair_selector(self, orphan, accept, 16)
                )
            elif self.repair_ranker is not None:
                # Legacy hook: the ranker expects the eligible set
                # pre-built, which needs the full scan.
                connected = set(self.depths().keys())
                connected.add(self.source.peer_id)
                eligible = [
                    member
                    for member in self.peers.values()
                    if member.alive
                    and member.spare_capacity > 0
                    and member.address != orphan.address
                    and member.peer_id in connected
                    and self.admissible(member)
                ]
                candidates = list(self.repair_ranker(orphan.address, eligible, 16))
            else:
                candidates = [
                    member.descriptor()
                    for member in self.index.sample_eligible(
                        self._rng, 16, exclude_addr=orphan.address, accept=accept
                    )
                ]
            if self.source.spare_capacity > 0:
                candidates.append(self.source.descriptor())
            attempts_before = self.join_attempts
            try:
                parent, attempts = self.join(orphan, candidates, now)
                self.repairs += 1
                repaired.append(orphan.peer_id)
                self.repair_log.append(
                    RepairRecord(
                        orphan_id=orphan.peer_id,
                        parent_id=parent.peer_id,
                        attempts=attempts,
                        same_region=parent.region == orphan.region,
                    )
                )
            except CapacityError:
                self.repair_log.append(
                    RepairRecord(
                        orphan_id=orphan.peer_id,
                        parent_id=None,
                        attempts=self.join_attempts - attempts_before,
                        same_region=False,
                    )
                )
        return repaired

    def _connectivity_probe(self) -> Callable[[str], bool]:
        """A memoized source-reachability oracle over parent links.

        ``probe(peer_id)`` is True when an upward chain of live,
        link-validated parent edges (the peer's plan entry *and* the
        parent's matching child link -- the same edges BFS follows
        downward) reaches the source.  Each query walks only the
        ancestor closure not already memoized, so a repair pass over k
        candidates costs O(sum of unexplored ancestor paths) instead
        of k full-overlay BFS traversals.
        """
        source_id = self.source.peer_id
        memo: Dict[str, bool] = {}

        def parents_of(peer_id: str) -> List[str]:
            plan = self.plans.get(peer_id)
            child = self.peers.get(peer_id)
            if plan is None or child is None:
                return []
            out: List[str] = []
            for parent_id in set(plan.parents.values()):
                holder = (
                    self.source
                    if parent_id == source_id
                    else self.peers.get(parent_id)
                )
                if holder is None or not holder.alive:
                    continue
                if any(
                    link.child_peer is child for link in holder.children.values()
                ):
                    out.append(parent_id)
            return out

        def connected(target: str) -> bool:
            cached = memo.get(target)
            if cached is not None:
                return cached
            # Upward DFS from the target; reaching the source (or a
            # memo-True ancestor) proves every node on the discovery
            # path connected.  Exhausting the search proves every
            # up-reachable node disconnected (their entire upward
            # closure was explored), so both outcomes memoize.
            pred: Dict[str, Optional[str]] = {target: None}
            stack = [target]
            hit: Optional[str] = None
            while stack and hit is None:
                peer_id = stack.pop()
                for parent_id in parents_of(peer_id):
                    if parent_id == source_id or memo.get(parent_id):
                        hit = peer_id
                        break
                    if memo.get(parent_id) is False or parent_id in pred:
                        continue
                    pred[parent_id] = peer_id
                    stack.append(parent_id)
            if hit is None:
                for peer_id in pred:
                    memo[peer_id] = False
                return False
            node: Optional[str] = hit
            while node is not None:
                memo[node] = True
                node = pred[node]
            return True

        return connected

    def orphans(self) -> List[str]:
        """Peers with incomplete parent plans (need repair)."""
        return [
            peer_id
            for peer_id, plan in self.plans.items()
            if peer_id in self.peers and not plan.complete
        ]

    # ------------------------------------------------------------------
    # Byzantine containment
    # ------------------------------------------------------------------

    def contain(self, now: float) -> List[str]:
        """Evict quarantined members; returns the evicted peer ids.

        Eviction reuses :meth:`remove_peer`, so each evicted peer's
        children re-join through the ranked repair path -- which
        excludes quarantined candidates (:meth:`_admissible`), so
        repair routes around the adversary by construction.  Run this
        periodically (the chaos rigs sweep once per key epoch).
        """
        if self.scorecard is None:
            return []
        evicted: List[str] = []
        for peer_id in sorted(self.scorecard.quarantined()):
            if peer_id not in self.peers:
                continue
            repaired = self.remove_peer(peer_id, now)
            evicted.append(peer_id)
            self.scorecard.counters.peers_evicted += 1
            self.scorecard.counters.eviction_repairs += len(repaired)
            self.scorecard.events.append((now, "evict", peer_id))
            if self.scorecard.tracer is not None:
                span = self.scorecard.tracer.start_span(
                    "ADVERSARY.evict", now=now, kind="adversary"
                )
                span.annotate("peer", peer_id)
                span.annotate("children_repaired", len(repaired))
                self.scorecard.tracer.finish(span, now=now)
        return evicted

    def audit_depths(self, now: float, tolerance: int = 1) -> List[str]:
        """Cross-check advertised depths against the measured tree.

        A peer claiming to sit *shallower* than the BFS truth by more
        than ``tolerance`` hops is gaming parent selection (ranked
        lists prefer shallow parents) and is reported as a depth liar.
        Claiming deeper is self-defeating and not flagged.  The
        tolerance absorbs honest heartbeat lag: a peer re-parented
        since its last key epoch is up to one refresh stale.
        """
        if self.scorecard is None:
            return []
        measured = self.depths()
        flagged: List[str] = []
        for peer_id, true_depth in measured.items():
            peer = self.peers.get(peer_id)
            if peer is None:
                continue
            if true_depth - peer.depth > tolerance:
                self.scorecard.report(peer_id, DEPTH_LIE, now=now)
                flagged.append(peer_id)
        return flagged

    # ------------------------------------------------------------------
    # Invariants and stats
    # ------------------------------------------------------------------

    def check_tree(self) -> None:
        """Assert reachability from the source and acyclicity.

        Raises :class:`OverlayError` on violation.  Only single-parent
        overlays form strict trees; with sub-streams the structure is a
        DAG, and this check verifies reachability plus absence of
        directed cycles.
        """
        visited: set = set()
        stack = [self.source]
        while stack:
            node = stack.pop()
            if node.peer_id in visited:
                continue
            visited.add(node.peer_id)
            for link in node.children.values():
                if link.child_peer is not None:
                    stack.append(link.child_peer)
        unreachable = [pid for pid in self.peers if pid not in visited]
        if unreachable:
            raise OverlayError(f"peers unreachable from source: {unreachable}")
        # Cycle check: depth-first from source with a recursion marker.
        in_progress: set = set()
        done: set = set()

        def visit(node: Peer) -> None:
            if node.peer_id in done:
                return
            if node.peer_id in in_progress:
                raise OverlayError(f"cycle through {node.peer_id}")
            in_progress.add(node.peer_id)
            for link in node.children.values():
                if link.child_peer is not None:
                    visit(link.child_peer)
            in_progress.discard(node.peer_id)
            done.add(node.peer_id)

        visit(self.source)

    def depths(self) -> Dict[str, int]:
        """Hop distance of every reachable peer from the source."""
        result: Dict[str, int] = {}
        frontier = [(self.source, 0)]
        while frontier:
            node, depth = frontier.pop()
            for link in node.children.values():
                child = link.child_peer
                if child is None or child.peer_id in result:
                    continue
                result[child.peer_id] = depth + 1
                frontier.append((child, depth + 1))
        return result

    def enforce_expiry(self, now: float, grace: float = 0.0) -> int:
        """Run ticket-expiry enforcement at every peer; returns severed count."""
        severed = 0
        for node in [self.source, *list(self.peers.values())]:
            severed += len(node.enforce_ticket_expiry(now, grace))
        return severed

"""Flash-crowd overlay storm: ranked peer lists under join pressure.

Drives a multi-region flash-crowd audience (steep ramp, mid-event
churn) through the *real* control plane -- redirection lookup, LOGIN,
SWITCH1/2 against the Channel Manager's peer-list pipeline, JOIN
admission at actual overlay peers, churn repair through
``remove_peer`` -- while a virtual clock prices every network exchange
with the WAN model (:mod:`repro.sim.network`).  Nothing here is a
queueing abstraction: every join really walks the list the CM built,
so a worse peer-list policy produces more refusals, deeper trees, and
longer chains, and the latencies price that.

Each viewer's join is one trace: a ``JOIN_E2E`` root with REDIRECT ->
SWITCH -> JOIN -> FIRSTPKT phase spans (explicit virtual times), so
the p50/p99 join latency decomposes exactly into where it was spent.
Key-distribution latency is priced along each viewer's actual
sub-stream-0 parent chain (per-hop regions known, so same-region hops
cost same-region RTTs), and repair time is priced from the overlay's
``repair_log`` (a list re-fetch plus the recorded join attempts).

The driver is deployment-shaped, not overlay-shaped: pass
``partitions > 1`` and the same storm runs against the sharded manager
tier (consistent-hash channel placement) unchanged.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.deployment import Deployment
from repro.errors import CapacityError, ReproError
from repro.metrics.selection import counters as selection_counters
from repro.metrics.stats import percentile
from repro.p2p.peer import Peer
from repro.sim.network import LatencyModel, peer_rtt, zattoo_like_rtt_table
from repro.trace.span import Tracer
from repro.workload.flashcrowd import FlashCrowdWorkload

#: Data-centre site name in the Zattoo-shaped RTT table.
SITE = "dc-eu"


@dataclass
class OverlayStormConfig:
    """Knobs for one storm arm.

    ``event_duration`` defaults short enough that mid-event departures
    (and therefore churn repairs) land inside the 900 s Channel Ticket
    lifetime -- orphans re-present their ticket at repair time.
    """

    viewers: int = 600
    seed: int = 23
    channel: str = "flash"
    regions: Tuple[str, ...] = ("CH", "DE", "FR", "UK")
    sampler: str = "ranked"  # "ranked" | "uniform"
    event_duration: float = 600.0
    ramp: float = 90.0
    mid_departure_fraction: float = 0.15
    source_capacity: int = 32
    #: Times a joiner returns to the CM for a fresh list after every
    #: candidate refused, before giving up.
    max_list_fetches: int = 4
    #: >1 stands the storm up against the sharded manager tier.
    partitions: int = 1
    #: Also attach the tracer to the protocol components (client/CM
    #: spans nest under the storm's phase spans).  Off by default: at
    #: 10k viewers the protocol spans alone would blow the span budget.
    trace_protocol: bool = False
    #: Run ``CandidateIndex.verify_against(overlay)`` every
    #: ``verify_every`` workload events (and once at the end): the
    #: index must mirror the overlay exactly or the storm aborts.
    #: The check is O(n) -- smoke-size storms and CI only.
    verify_index: bool = False
    verify_every: int = 2000


@dataclass
class OverlayStormResult:
    """Everything the benchmarks and the CLI report about one arm."""

    config: OverlayStormConfig
    tracer: Tracer
    deployment: Deployment
    #: End-to-end per-viewer join latency (redirect -> first packet), s.
    join_latencies: List[float] = field(default_factory=list)
    #: Per-phase latencies, keyed REDIRECT/SWITCH/JOIN/FIRSTPKT.
    phases: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-viewer key-distribution latency along the parent chain, s.
    key_dist_latencies: List[float] = field(default_factory=list)
    #: Per-orphan repair time (list re-fetch + join attempts), s.
    repair_times: List[float] = field(default_factory=list)
    repairs_local: int = 0
    repairs_failed: int = 0
    join_failures: int = 0
    joined: int = 0
    departed: int = 0
    #: Fraction of successful joins whose sub-stream-0 parent shares
    #: the viewer's region (the source never counts as local).
    parent_locality: float = 0.0
    mean_depth: float = 0.0
    max_depth: int = 0
    #: Selection-plane counter growth over this arm (see
    #: :mod:`repro.metrics.selection`): how many candidates the
    #: peer-list pipeline examined per request, index vs. scan.
    selection: Dict[str, int] = field(default_factory=dict)
    #: Index self-checks run (``verify_index`` arms only).
    index_verifications: int = 0

    def as_dict(self) -> Dict[str, object]:
        def stats(values: List[float]) -> Dict[str, float]:
            if not values:
                return {"count": 0, "p50": 0.0, "p99": 0.0, "mean": 0.0}
            return {
                "count": len(values),
                "p50": round(percentile(values, 50), 4),
                "p99": round(percentile(values, 99), 4),
                "mean": round(sum(values) / len(values), 4),
            }

        repairs_total = len(self.repair_times) + self.repairs_failed
        return {
            "sampler": self.config.sampler,
            "viewers": self.config.viewers,
            "joined": self.joined,
            "join_failures": self.join_failures,
            "departed": self.departed,
            "join_latency": stats(self.join_latencies),
            "phases": {name: stats(values) for name, values in self.phases.items()},
            "key_dist_latency": stats(self.key_dist_latencies),
            "repair_time": stats(self.repair_times),
            "repairs_failed": self.repairs_failed,
            "repair_locality": round(
                self.repairs_local / repairs_total, 3
            ) if repairs_total else 0.0,
            "parent_locality": round(self.parent_locality, 3),
            "mean_depth": round(self.mean_depth, 2),
            "max_depth": self.max_depth,
            "spans": len(self.tracer.spans),
            "selection": dict(self.selection),
            "candidates_per_request": (
                round(
                    self.selection.get("candidates_considered", 0)
                    / self.selection["requests"],
                    2,
                )
                if self.selection.get("requests")
                else 0.0
            ),
            "index_verifications": self.index_verifications,
        }


def _chain_one_way(
    overlay, peer: Peer, rng: random.Random, max_hops: int = 128
) -> float:
    """One-way delay from the source to ``peer`` along the sub-stream-0
    parent chain -- the path the rotating content key (and the first
    decryptable packet) actually travels."""
    total = 0.0
    node = peer
    substream = overlay.substreams.substreams()[0]
    for _ in range(max_hops):
        plan = overlay.plans.get(node.peer_id)
        if plan is None:
            break
        parent_id = plan.parent_of(substream)
        if parent_id is None:
            break
        try:
            parent = overlay.lookup(parent_id)
        except Exception:
            break
        same_region = parent.region == node.region
        total += peer_rtt(rng, same_region) / 2.0
        if parent_id == overlay.source.peer_id:
            break
        node = parent
    return total


def run_overlay_storm(config: OverlayStormConfig) -> OverlayStormResult:
    """Run one storm arm; deterministic under the config's seed."""
    if config.sampler not in ("ranked", "uniform"):
        raise ReproError(f"unknown sampler arm: {config.sampler!r}")
    rng = random.Random(config.seed)
    if config.partitions > 1:
        deployment = Deployment(
            seed=config.seed,
            n_domains=config.partitions,
            partitions=tuple(f"part-{i}" for i in range(config.partitions)),
            source_capacity=config.source_capacity,
        )
        deployment.enable_sharding()
    else:
        deployment = Deployment(seed=config.seed, source_capacity=config.source_capacity)
    deployment.add_free_channel(config.channel, regions=list(config.regions))
    if config.sampler == "uniform":
        deployment.use_uniform_peer_lists()

    # All times are passed explicitly (virtual clock).  The default
    # span budget fits the 600-viewer smoke; a 100k-viewer arm emits
    # ~6 spans per join, so scale the ceiling with the audience.
    tracer = Tracer(max_spans=max(200_000, config.viewers * 8))
    if config.trace_protocol:
        deployment.enable_tracing(tracer)

    latency = LatencyModel(
        random.Random(rng.randrange(2**63)), table=zattoo_like_rtt_table()
    )
    link_rng = random.Random(rng.randrange(2**63))
    workload = FlashCrowdWorkload(
        random.Random(rng.randrange(2**63)),
        audience=config.viewers,
        regions=config.regions,
        event_duration=config.event_duration,
        ramp=config.ramp,
        mid_departure_fraction=config.mid_departure_fraction,
    )
    # The whole synthetic fleet shares one client RSA key: per-viewer
    # keygen is ~16 ms of pure setup cost and irrelevant to overlay
    # behaviour, and skipping it is what makes 10k-viewer arms feasible.
    fleet_key = generate_keypair(
        HmacDrbg(b"overlay-storm", b"fleet-key"), bits=deployment.key_bits
    )

    overlay = deployment.overlay(config.channel)
    result = OverlayStormResult(config=config, tracer=tracer, deployment=deployment)
    phases: Dict[str, List[float]] = {
        "REDIRECT": [], "SWITCH": [], "JOIN": [], "FIRSTPKT": []
    }
    peers: Dict[int, Peer] = {}
    local_parents = 0
    horizon = workload.churn.event_end
    selection_mark = selection_counters.snapshot()
    events_processed = 0

    for event, spec in workload.events():
        if event.time > horizon:
            break
        events_processed += 1
        if config.verify_index and events_processed % config.verify_every == 0:
            overlay.index.verify_against(overlay)
            result.index_verifications += 1
        if event.kind == "leave":
            peer = peers.pop(spec.index, None)
            if peer is None or peer.peer_id not in overlay.peers:
                continue  # never joined, or already severed
            log_mark = overlay.repair_log.total
            overlay.remove_peer(peer.peer_id, now=event.time)
            result.departed += 1
            for record in overlay.repair_log.since(log_mark):
                # Price the orphan's repair: one list re-fetch at the
                # CM, then the recorded number of JOIN attempts.  The
                # final (accepted) attempt's locality is known from the
                # record; earlier refusals are priced as same-region
                # tries under ranked lists and cross-region under
                # uniform -- matching what each policy actually serves.
                orphan = overlay.peers.get(record.orphan_id)
                orphan_region = orphan.region if orphan is not None else "CH"
                repair = latency.sample_rtt(orphan_region, SITE)
                for attempt in range(record.attempts):
                    final = attempt == record.attempts - 1
                    same = record.same_region if final else (
                        config.sampler == "ranked"
                    )
                    repair += peer_rtt(link_rng, same and record.parent_id is not None)
                span = tracer.start_span("REPAIR", now=event.time, parent=None, kind="op")
                span.network_time = repair
                span.annotate("orphan", record.orphan_id)
                span.annotate("repaired", record.parent_id is not None)
                tracer.finish(span, now=event.time + repair)
                if record.parent_id is None:
                    result.repairs_failed += 1
                else:
                    result.repair_times.append(repair)
                    if record.same_region:
                        result.repairs_local += 1
            continue

        # -------- join pipeline, one trace per viewer -----------------
        t0 = event.time
        t = t0
        root = tracer.start_span("JOIN_E2E", now=t0, parent=None, kind="op")
        root.annotate("region", spec.region)
        root.annotate("sampler", config.sampler)
        with tracer.using(root.context):
            # Phase 1: redirection -- where is my User Manager?
            rtt = latency.sample_rtt(spec.region, SITE)
            span = tracer.start_span("REDIRECT", now=t, kind="round")
            span.network_time = rtt
            t += rtt
            tracer.finish(span, now=t)
            phases["REDIRECT"].append(rtt)

            client = deployment.create_client(
                f"viewer{spec.index}@storm.example.org",
                "pw",
                region=spec.region,
                keypair=fleet_key,
            )
            client.login(now=t)

            # Phases 2+3: SWITCH for a peer list, JOIN down that list;
            # on total refusal the client goes back for a fresh list.
            peer: Optional[Peer] = None
            parent = None
            switch_total = 0.0
            join_total = 0.0
            fetches = 0
            attempts_total = 0
            while fetches < config.max_list_fetches and parent is None:
                fetches += 1
                rtt = latency.sample_rtt(spec.region, SITE)
                span = tracer.start_span("SWITCH", now=t, kind="round")
                span.network_time = rtt
                response = client.switch_channel(config.channel, now=t)
                t += rtt
                switch_total += rtt
                span.annotate("peer_list", len(response.peers))
                tracer.finish(span, now=t)

                if peer is None:
                    peer = deployment.make_peer(
                        client, config.channel, capacity=spec.capacity
                    )
                span = tracer.start_span("JOIN", now=t, kind="round")
                before = overlay.join_attempts
                try:
                    parent, _ = overlay.join(peer, response.peers, now=t)
                except CapacityError:
                    parent = None
                    span.annotate("error", "CapacityError")
                attempts = overlay.join_attempts - before
                attempts_total += attempts
                # One round trip per attempted candidate, priced by the
                # candidate's region (refused attempts cost their RTT
                # too -- that is exactly how a badly ordered list hurts).
                leg = 0.0
                for descriptor in response.peers[:attempts]:
                    leg += peer_rtt(link_rng, descriptor.region == spec.region)
                span.network_time = leg
                t += leg
                join_total += leg
                span.annotate("attempts", attempts)
                tracer.finish(span, now=t)
            phases["SWITCH"].append(switch_total)
            phases["JOIN"].append(join_total)
            root.annotate("fetches", fetches)
            root.annotate("attempts", attempts_total)

            if parent is None:
                result.join_failures += 1
                root.annotate("error", "CapacityError")
                tracer.finish(root, now=t)
                continue

            # Phase 4: first decryptable packet -- the content key and
            # the stream both travel the actual parent chain.
            assert peer is not None
            chain = _chain_one_way(overlay, peer, link_rng)
            span = tracer.start_span("FIRSTPKT", now=t, kind="round")
            span.network_time = chain
            t += chain
            tracer.finish(span, now=t)
            phases["FIRSTPKT"].append(chain)

            result.key_dist_latencies.append(_chain_one_way(overlay, peer, link_rng))
            if parent.peer_id != overlay.source.peer_id and parent.region == spec.region:
                local_parents += 1
        tracer.finish(root, now=t)
        result.join_latencies.append(t - t0)
        result.joined += 1
        peers[spec.index] = peer

    if config.verify_index:
        overlay.index.verify_against(overlay)
        result.index_verifications += 1
    result.selection = selection_counters.delta_since(selection_mark)
    result.phases = phases
    if result.joined:
        result.parent_locality = local_parents / result.joined
    depths = overlay.depths()
    if depths:
        result.mean_depth = sum(depths.values()) / len(depths)
        result.max_depth = max(depths.values())
    return result


def run_storm_comparison(
    base: Optional[OverlayStormConfig] = None,
) -> Dict[str, OverlayStormResult]:
    """Run the ranked and uniform arms of the same storm (same seed,
    same audience) and return both results keyed by sampler name."""
    from dataclasses import replace

    base = base or OverlayStormConfig()
    return {
        "ranked": run_overlay_storm(replace(base, sampler="ranked")),
        "uniform": run_overlay_storm(replace(base, sampler="uniform")),
    }

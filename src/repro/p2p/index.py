"""Incrementally-maintained candidate index for peer selection.

PR 8's ranked SWITCH2 pipeline re-scanned the full overlay membership
on every request -- 100k joiners each ranking 100k members is
quadratic control-plane work, and the ROADMAP names it as the blocker
to the 100k-viewer flash-crowd target.  The :class:`CandidateIndex`
replaces the scan: eligible peers are bucketed by region and by AS,
each bucket keeps a lazy-deletion heap ordered by the shared ranking
key ``(depth, -spare_capacity, jitter, peer_id)`` plus a randomized
member array for O(1) uniform sampling, and a selection request drains
``O(count + buckets.log)`` heap pops instead of touching every member.

**Single-writer invariant.**  The owning
:class:`~repro.p2p.overlay.ChannelOverlay` is the only writer: it
publishes every membership event -- registration, departure, child
capacity deltas, depth-heartbeat adoption, scorecard quarantine and
release -- through :meth:`add_peer` / :meth:`remove_peer` /
:meth:`update_peer` / :meth:`set_admissible`.  The index never polls
peers; if an event is missed the index silently serves a stale view,
which is why :meth:`verify_against` exists (the storm driver and the
equivalence suite run it) and why peers carry a ``membership_listener``
hook that fires on *every* state change a ranking can observe.

**Lazy deletion.**  A peer whose key changes (a child joined, a depth
heartbeat landed) is re-pushed with a fresh ``token``; outstanding
heap tuples with older tokens are recognized as stale at pop time and
dropped.  A bucket whose heap outgrows its live membership 4x is
compacted (rebuilt from the member array; counted in
``selection.rebuilds``).

**Determinism.**  Ranking ties break on a *stable* per-peer jitter --
a keyed blake2b of the peer id under a per-overlay salt -- rather than
per-request randomness, so the index-backed and scan-backed providers
produce byte-identical lists from the same overlay state (the
equivalence pin in ``tests/p2p/test_selection_equivalence.py``).
Herding is still avoided: the jitter decorrelates equal-rank peers
across overlays, and every accepted join changes the winner's spare
capacity, rotating the head of its bucket for the next request.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import OverlayError
from repro.metrics.selection import counters

#: A draw-time filter over candidate peers (e.g. the churn-repair
#: connectivity probe).  Filtered entries stay in the index.
PeerFilter = Callable[[object], bool]

#: Heaps are compacted when they exceed ``_COMPACT_FACTOR`` x the live
#: membership (and the floor, so tiny buckets never bother).
_COMPACT_FACTOR = 4
_COMPACT_FLOOR = 64


def stable_jitter(salt: bytes, peer_id: str) -> int:
    """Deterministic ranking tiebreak: keyed hash of the peer id.

    Salted per overlay so the same peer population does not tie-break
    identically across channels (which would herd multi-channel
    deployments onto the same parents).
    """
    digest = hashlib.blake2b(peer_id.encode("utf-8"), key=salt, digest_size=8)
    return int.from_bytes(digest.digest(), "big")


class _Entry:
    """The index's cached view of one registered peer."""

    __slots__ = (
        "peer",
        "region",
        "asn",
        "address",
        "depth",
        "spare",
        "admissible",
        "eligible",
        "token",
        "jitter",
    )

    def __init__(self, peer, admissible: bool, jitter: int) -> None:
        self.peer = peer
        self.region = peer.region
        self.asn = peer.asn
        self.address = peer.address
        self.depth = peer.depth
        self.spare = peer.spare_capacity
        self.admissible = admissible
        self.eligible = False
        self.token = 0
        self.jitter = jitter

    def key(self) -> Tuple[int, int, int, str]:
        """The shared ranking key (proximity is the bucket, not the key)."""
        return (self.depth, -self.spare, self.jitter, self.peer.peer_id)


class _Bucket:
    """One (region or AS) bucket: a lazy heap plus a randomized set."""

    __slots__ = ("heap", "members", "pos")

    def __init__(self) -> None:
        #: ``(depth, -spare, jitter, peer_id, token)`` tuples; stale
        #: tokens are dropped at pop time.
        self.heap: List[Tuple[int, int, int, str, int]] = []
        #: Eligible member ids, order-free (swap-pop removal) so
        #: ``members[rng.randrange(len)]`` samples uniformly.
        self.members: List[str] = []
        self.pos: Dict[str, int] = {}

    def add(self, peer_id: str) -> None:
        if peer_id in self.pos:
            return
        self.pos[peer_id] = len(self.members)
        self.members.append(peer_id)

    def discard(self, peer_id: str) -> None:
        index = self.pos.pop(peer_id, None)
        if index is None:
            return
        last = self.members.pop()
        if last != peer_id:
            self.members[index] = last
            self.pos[last] = index

    def __len__(self) -> int:
        return len(self.members)


class CandidateIndex:
    """Region/AS-bucketed candidate sets with rank-ordered draws.

    Parameters
    ----------
    salt:
        Per-overlay jitter salt (see :func:`stable_jitter`); the
        overlay derives it from its own DRBG fork so results stay
        deterministic per deployment seed.
    """

    def __init__(self, salt: bytes) -> None:
        self.salt = salt
        self._entries: Dict[str, _Entry] = {}
        self._by_region: Dict[str, _Bucket] = {}
        self._by_asn: Dict[int, _Bucket] = {}
        #: Total eligible members (all region buckets combined).
        self._eligible_count = 0

    # ------------------------------------------------------------------
    # Membership events (the overlay is the single writer)
    # ------------------------------------------------------------------

    def add_peer(self, peer, admissible: bool) -> None:
        """Register (or refresh) a peer.  Idempotent: churn repair
        re-registers an orphan that never left the overlay."""
        counters.index_events += 1
        entry = self._entries.get(peer.peer_id)
        if entry is None:
            entry = _Entry(peer, admissible, stable_jitter(self.salt, peer.peer_id))
            self._entries[peer.peer_id] = entry
        entry.admissible = admissible
        self._refresh(entry)

    def remove_peer(self, peer_id: str) -> None:
        """Drop a departed peer; its outstanding heap tuples go stale."""
        counters.index_events += 1
        entry = self._entries.pop(peer_id, None)
        if entry is None:
            return
        if entry.eligible:
            self._set_membership(entry, False)

    def update_peer(self, peer) -> None:
        """Absorb a state change (capacity, depth, liveness)."""
        counters.index_events += 1
        entry = self._entries.get(peer.peer_id)
        if entry is None:
            return  # not (yet) registered with the overlay
        self._refresh(entry)

    def set_admissible(self, peer_id: str, admissible: bool) -> None:
        """Absorb a quarantine/release event from the scorecard."""
        counters.index_events += 1
        entry = self._entries.get(peer_id)
        if entry is None:
            return
        if entry.admissible != admissible:
            entry.admissible = admissible
            self._refresh(entry)

    def _refresh(self, entry: _Entry) -> None:
        peer = entry.peer
        if peer.region != entry.region or peer.asn != entry.asn:
            # Bucket move (locality edits are rare -- tests and
            # operator overrides): evict from the old buckets, then
            # fall through to re-place under the new identity.
            if entry.eligible:
                self._set_membership(entry, False)
                entry.eligible = False
                entry.token += 1
            entry.region = peer.region
            entry.asn = peer.asn
        entry.address = peer.address
        depth = peer.depth
        spare = peer.spare_capacity
        eligible = bool(peer.alive) and spare > 0 and entry.admissible
        key_changed = depth != entry.depth or spare != entry.spare
        entry.depth = depth
        entry.spare = spare
        if eligible and not entry.eligible:
            entry.eligible = True
            self._set_membership(entry, True)
            self._push(entry)
        elif not eligible and entry.eligible:
            entry.eligible = False
            self._set_membership(entry, False)
            entry.token += 1  # invalidate outstanding tuples
        elif eligible and key_changed:
            self._push(entry)

    def _set_membership(self, entry: _Entry, present: bool) -> None:
        peer_id = entry.peer.peer_id
        region_bucket = self._region_bucket(entry.region)
        asn_bucket = self._asn_bucket(entry.asn)
        if present:
            region_bucket.add(peer_id)
            self._eligible_count += 1
            if asn_bucket is not None:
                asn_bucket.add(peer_id)
        else:
            region_bucket.discard(peer_id)
            self._eligible_count -= 1
            if asn_bucket is not None:
                asn_bucket.discard(peer_id)

    def _region_bucket(self, region: str) -> _Bucket:
        bucket = self._by_region.get(region)
        if bucket is None:
            bucket = self._by_region[region] = _Bucket()
        return bucket

    def _asn_bucket(self, asn: int) -> Optional[_Bucket]:
        if not asn:
            return None  # ASN 0 = unknown; never matches same-AS
        bucket = self._by_asn.get(asn)
        if bucket is None:
            bucket = self._by_asn[asn] = _Bucket()
        return bucket

    def _push(self, entry: _Entry) -> None:
        entry.token += 1
        item = (*entry.key(), entry.token)
        region_bucket = self._region_bucket(entry.region)
        heapq.heappush(region_bucket.heap, item)
        self._maybe_compact(region_bucket)
        asn_bucket = self._asn_bucket(entry.asn)
        if asn_bucket is not None:
            heapq.heappush(asn_bucket.heap, item)
            self._maybe_compact(asn_bucket)

    def _maybe_compact(self, bucket: _Bucket) -> None:
        if len(bucket.heap) <= max(_COMPACT_FLOOR, _COMPACT_FACTOR * len(bucket)):
            return
        counters.rebuilds += 1
        heap = []
        for peer_id in bucket.members:
            entry = self._entries[peer_id]
            heap.append((*entry.key(), entry.token))
        heapq.heapify(heap)
        bucket.heap = heap

    # ------------------------------------------------------------------
    # Rank-ordered draws (the RankedPeerListProvider's fast path)
    # ------------------------------------------------------------------

    def top_local(
        self,
        record,
        count: int,
        exclude_addr: Optional[str] = None,
        accept: Optional[PeerFilter] = None,
    ) -> List:
        """The requester-local rank list: same-AS peers first (proximity
        2, whatever their region), then same-region peers from other
        ASes (proximity 1), each block in shared-key order."""
        if record is None or count <= 0:
            return []
        out: List = []
        asn = getattr(record, "asn", 0)
        if asn:
            bucket = self._by_asn.get(asn)
            if bucket is not None:
                out.extend(
                    self._take(bucket, count, exclude_addr, accept, exclude_asn=None)
                )
        bucket = self._by_region.get(record.region)
        if bucket is not None and len(out) < count:
            out.extend(
                self._take(
                    bucket, count - len(out), exclude_addr, accept, exclude_asn=asn
                )
            )
        return [entry.peer for entry in out]

    def top_remote(
        self,
        record,
        count: int,
        exclude_addr: Optional[str] = None,
        accept: Optional[PeerFilter] = None,
    ) -> List:
        """The proximity-0 rank list: peers outside the requester's
        region *and* AS, merged across region buckets in key order.
        With no geo record every peer is proximity 0."""
        if count <= 0:
            return []
        region = getattr(record, "region", None) if record is not None else None
        asn = getattr(record, "asn", 0) if record is not None else 0
        gathered: List[_Entry] = []
        for name, bucket in self._by_region.items():
            if name == region:
                continue
            gathered.extend(
                self._take(bucket, count, exclude_addr, accept, exclude_asn=asn)
            )
        gathered.sort(key=_Entry.key)
        return [entry.peer for entry in gathered[:count]]

    def _take(
        self,
        bucket: _Bucket,
        count: int,
        exclude_addr: Optional[str],
        accept: Optional[PeerFilter],
        exclude_asn: Optional[int],
    ) -> List[_Entry]:
        """Pop the bucket's ``count`` best matching entries, validating
        lazily-deleted tuples, then push every valid tuple back."""
        heap = bucket.heap
        popped: List[Tuple[int, int, int, str, int]] = []
        out: List[_Entry] = []
        while heap and len(out) < count:
            item = heapq.heappop(heap)
            entry = self._entries.get(item[3])
            if entry is None or not entry.eligible or item[4] != entry.token:
                counters.stale_entries_skipped += 1
                continue
            popped.append(item)
            counters.candidates_considered += 1
            if exclude_addr is not None and entry.address == exclude_addr:
                continue
            if exclude_asn and entry.asn == exclude_asn:
                continue
            if accept is not None and not accept(entry.peer):
                continue
            out.append(entry)
        for item in popped:
            heapq.heappush(heap, item)
        return out

    # ------------------------------------------------------------------
    # Uniform sampling (the uniform/region-aware arms)
    # ------------------------------------------------------------------

    def sample_eligible(
        self,
        rng: random.Random,
        count: int,
        exclude_addr: Optional[str] = None,
        accept: Optional[PeerFilter] = None,
    ) -> List:
        """Uniform sample (without replacement) over every eligible peer."""
        return self._sample(
            rng, list(self._by_region.values()), count, exclude_addr, accept
        )

    def sample_region(
        self,
        rng: random.Random,
        region: str,
        count: int,
        exclude_addr: Optional[str] = None,
    ) -> List:
        """Uniform sample within one region bucket."""
        bucket = self._by_region.get(region)
        if bucket is None:
            return []
        return self._sample(rng, [bucket], count, exclude_addr, None)

    def sample_outside_region(
        self,
        rng: random.Random,
        region: str,
        count: int,
        exclude_addr: Optional[str] = None,
    ) -> List:
        """Uniform sample over every region bucket except ``region``."""
        buckets = [b for name, b in self._by_region.items() if name != region]
        return self._sample(rng, buckets, count, exclude_addr, None)

    def _sample(
        self,
        rng: random.Random,
        buckets: List[_Bucket],
        count: int,
        exclude_addr: Optional[str],
        accept: Optional[PeerFilter],
    ) -> List:
        """Rejection-sample uniformly across a union of buckets.

        Re-drawing a uniform position over the (static) union and
        skipping repeats is exactly sampling without replacement, so
        the result matches a full shuffle in distribution at
        O(count) expected cost.  Dense draws (or filter-heavy calls)
        fall back to the materialize-and-shuffle path.
        """
        sizes = [len(bucket) for bucket in buckets]
        total = sum(sizes)
        if total == 0 or count <= 0:
            return []
        if count * 2 >= total:
            return self._sample_dense(rng, buckets, count, exclude_addr, accept)
        out: List = []
        seen: set = set()
        budget = 8 * count + 32
        while len(out) < count and len(seen) < total and budget > 0:
            budget -= 1
            position = rng.randrange(total)
            for bucket, size in zip(buckets, sizes):
                if position < size:
                    peer_id = bucket.members[position]
                    break
                position -= size
            if peer_id in seen:
                continue
            seen.add(peer_id)
            entry = self._entries[peer_id]
            counters.candidates_considered += 1
            if exclude_addr is not None and entry.address == exclude_addr:
                continue
            if accept is not None and not accept(entry.peer):
                continue
            out.append(entry.peer)
        if len(out) < count and len(seen) < total:
            # Filter-heavy draw blew the rejection budget: fall back.
            return self._sample_dense(rng, buckets, count, exclude_addr, accept)
        return out

    def _sample_dense(
        self,
        rng: random.Random,
        buckets: List[_Bucket],
        count: int,
        exclude_addr: Optional[str],
        accept: Optional[PeerFilter],
    ) -> List:
        pool: List[str] = []
        for bucket in buckets:
            pool.extend(bucket.members)
        rng.shuffle(pool)
        out: List = []
        for peer_id in pool:
            if len(out) >= count:
                break
            entry = self._entries[peer_id]
            counters.candidates_considered += 1
            if exclude_addr is not None and entry.address == exclude_addr:
                continue
            if accept is not None and not accept(entry.peer):
                continue
            out.append(entry.peer)
        return out

    # ------------------------------------------------------------------
    # Introspection and self-check
    # ------------------------------------------------------------------

    @property
    def eligible_count(self) -> int:
        return self._eligible_count

    def __len__(self) -> int:
        return len(self._entries)

    def jitter_of(self, peer_id: str) -> int:
        return stable_jitter(self.salt, peer_id)

    def verify_against(self, overlay) -> None:
        """Assert the index mirrors the overlay's live state exactly.

        O(n); the storm driver runs it behind ``--verify-index`` and
        the equivalence suite runs it after every step.  Raises
        :class:`~repro.errors.OverlayError` on the first divergence --
        a missed membership event (a writer bypassing the overlay's
        event API) is a bug, not a condition to tolerate.
        """
        counters.verify_checks += 1
        problems: List[str] = []
        extra = set(self._entries) - set(overlay.peers)
        if extra:
            problems.append(f"entries for departed peers: {sorted(extra)[:5]}")
        for peer_id, peer in overlay.peers.items():
            entry = self._entries.get(peer_id)
            if entry is None:
                problems.append(f"missing entry: {peer_id}")
                continue
            admissible = overlay.admissible(peer)
            eligible = bool(peer.alive) and peer.spare_capacity > 0 and admissible
            if entry.peer is not peer:
                problems.append(f"entry object drift: {peer_id}")
            if (entry.region, entry.asn, entry.address) != (
                peer.region,
                peer.asn,
                peer.address,
            ):
                problems.append(f"identity drift: {peer_id}")
            if entry.depth != peer.depth or entry.spare != peer.spare_capacity:
                problems.append(
                    f"stale key for {peer_id}: cached "
                    f"(depth={entry.depth}, spare={entry.spare}) vs live "
                    f"(depth={peer.depth}, spare={peer.spare_capacity})"
                )
            if entry.admissible != admissible or entry.eligible != eligible:
                problems.append(f"eligibility drift: {peer_id}")
            in_region = (
                entry.peer.peer_id in self._region_bucket(entry.region).pos
            )
            if in_region != eligible:
                problems.append(f"region-bucket membership drift: {peer_id}")
            if entry.asn:
                in_asn = entry.peer.peer_id in self._asn_bucket(entry.asn).pos
                if in_asn != eligible:
                    problems.append(f"asn-bucket membership drift: {peer_id}")
            if problems and len(problems) >= 8:
                break
        expected_eligible = sum(len(b) for b in self._by_region.values())
        if expected_eligible != self._eligible_count:
            problems.append(
                f"eligible_count {self._eligible_count} != bucket total {expected_eligible}"
            )
        for name, bucket in self._by_region.items():
            for index, peer_id in enumerate(bucket.members):
                if bucket.pos.get(peer_id) != index:
                    problems.append(f"randomized-set corruption in region {name!r}")
                    break
        if problems:
            raise OverlayError(
                "candidate index diverged from overlay "
                f"{overlay.channel_id!r}: " + "; ".join(problems[:8])
            )

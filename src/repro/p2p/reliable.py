"""Reliable content-key delivery over lossy links.

Section IV-E leans on an assumption: "The underlying P2P protocol
ensures reliable distribution of content key."  This module *builds*
that assumption: an acknowledgement/retransmission layer for
:class:`~repro.core.protocol.KeyUpdate` messages running over the
virtual network, so a key pushed before its activation deadline
arrives despite packet loss.

Design: stop-and-wait per (link, serial) -- key updates are tiny and
rare (one per child per epoch), so windowing would be over-engineering.
The sender retransmits on a timer until acknowledged or until the
key's activation time has passed (at which point a newer key is on its
way anyway and the stale update is abandoned).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.protocol import KeyUpdate
from repro.sim.engine import Simulator

#: Delivery callback on the receiving side.
DeliveryHandler = Callable[[KeyUpdate], None]


@dataclass
class LinkStats:
    """Per-link reliability counters."""

    sent: int = 0
    retransmissions: int = 0
    delivered: int = 0
    acked: int = 0
    abandoned: int = 0


class LossyLink:
    """A unidirectional parent->child link with iid loss both ways."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        one_way_delay: float,
        loss_probability: float,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self._rng = rng
        self.one_way_delay = one_way_delay
        self.loss_probability = loss_probability

    def transmit(self, deliver: Callable[[], None]) -> None:
        """Send one message; it may be lost."""
        if self._rng.random() < self.loss_probability:
            return
        self.sim.schedule(self.one_way_delay, lambda sim: deliver())


class ReliableKeySender:
    """Parent-side stop-and-wait sender for one child link."""

    def __init__(
        self,
        link: LossyLink,
        receiver: "ReliableKeyReceiver",
        retransmit_interval: float = 0.5,
        max_attempts: int = 12,
    ) -> None:
        if retransmit_interval <= 0:
            raise ValueError("retransmit interval must be positive")
        self.link = link
        self.receiver = receiver
        self.retransmit_interval = retransmit_interval
        self.max_attempts = max_attempts
        self.stats = LinkStats()
        self._acked: set = set()

    def send(self, update: KeyUpdate) -> None:
        """Push one key update reliably."""
        self._attempt(update, attempt=1)

    def _attempt(self, update: KeyUpdate, attempt: int) -> None:
        marker = (update.serial, update.activate_at)
        if marker in self._acked:
            return
        if attempt > self.max_attempts or (
            attempt > 1 and self.link.sim.now > update.activate_at + self.retransmit_interval
        ):
            # A newer key has superseded this one; stop trying.
            self.stats.abandoned += 1
            return
        self.stats.sent += 1
        if attempt > 1:
            self.stats.retransmissions += 1
        self.link.transmit(lambda: self._delivered(update))
        self.link.sim.schedule(
            self.retransmit_interval, lambda sim: self._attempt(update, attempt + 1)
        )

    def _delivered(self, update: KeyUpdate) -> None:
        ack_marker = self.receiver.receive(update)
        # The ACK travels back over the same lossy path.
        self.link.transmit(lambda: self._acknowledge(ack_marker))

    def _acknowledge(self, marker: Tuple[int, float]) -> None:
        if marker not in self._acked:
            self._acked.add(marker)
            self.stats.acked += 1


class ReliableKeyReceiver:
    """Child-side receiver: dedup by serial, hand fresh keys upward."""

    def __init__(self, on_key: DeliveryHandler) -> None:
        self._on_key = on_key
        self._seen: set = set()
        self.stats = LinkStats()

    def receive(self, update: KeyUpdate) -> Tuple[int, float]:
        """Process one (possibly duplicate) delivery; returns the ACK
        marker.  Duplicates are acknowledged but not re-delivered --
        the ACK, not the payload, is what stops retransmission."""
        marker = (update.serial, update.activate_at)
        self.stats.delivered += 1
        if marker not in self._seen:
            self._seen.add(marker)
            self._on_key(update)
        return marker


def reliable_link_pair(
    sim: Simulator,
    rng: random.Random,
    on_key: DeliveryHandler,
    one_way_delay: float = 0.03,
    loss_probability: float = 0.1,
    retransmit_interval: float = 0.5,
) -> Tuple[ReliableKeySender, ReliableKeyReceiver]:
    """Convenience constructor for one parent->child reliable channel."""
    receiver = ReliableKeyReceiver(on_key)
    link = LossyLink(sim, rng, one_way_delay, loss_probability)
    sender = ReliableKeySender(link, receiver, retransmit_interval)
    return sender, receiver

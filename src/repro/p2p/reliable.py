"""Reliable content-key delivery over lossy links.

Section IV-E leans on an assumption: "The underlying P2P protocol
ensures reliable distribution of content key."  This module *builds*
that assumption: an acknowledgement/retransmission layer for
:class:`~repro.core.protocol.KeyUpdate` messages running over the
virtual network, so a key pushed before its activation deadline
arrives despite packet loss.

Design: stop-and-wait per (link, serial) -- key updates are tiny and
rare (one per child per epoch), so windowing would be over-engineering.
The sender retransmits on a timer until acknowledged or until the
key's activation time has passed (at which point a newer key is on its
way anyway and the stale update is abandoned).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.core.protocol import KeyUpdate
from repro.sim.engine import Simulator
from repro.trace.span import Span, Tracer

#: Delivery callback on the receiving side.
DeliveryHandler = Callable[[KeyUpdate], None]

#: How long after a key's activation its dedup marker is kept.  A
#: duplicate older than this is unreachable in practice: the sender
#: abandons retransmission shortly after activation, and the epoch
#: clock has moved several keys onward.  Sized to several epochs so
#: even pathologically delayed copies are still caught.
DEDUP_GRACE = 600.0


@dataclass
class LinkStats:
    """Per-link reliability counters."""

    sent: int = 0
    retransmissions: int = 0
    delivered: int = 0
    acked: int = 0
    abandoned: int = 0


class LossyLink:
    """A unidirectional parent->child link with iid loss both ways."""

    def __init__(
        self,
        sim: Simulator,
        rng: random.Random,
        one_way_delay: float,
        loss_probability: float,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise ValueError("loss probability must be in [0, 1)")
        self.sim = sim
        self._rng = rng
        self.one_way_delay = one_way_delay
        self.loss_probability = loss_probability

    def transmit(self, deliver: Callable[[], None]) -> None:
        """Send one message; it may be lost."""
        if self._rng.random() < self.loss_probability:
            return
        self.sim.schedule(self.one_way_delay, lambda sim: deliver())


class ReliableKeySender:
    """Parent-side stop-and-wait sender for one child link."""

    def __init__(
        self,
        link: LossyLink,
        receiver: "ReliableKeyReceiver",
        retransmit_interval: float = 0.5,
        max_attempts: int = 12,
        grace: float = DEDUP_GRACE,
    ) -> None:
        if retransmit_interval <= 0:
            raise ValueError("retransmit interval must be positive")
        self.link = link
        self.receiver = receiver
        self.retransmit_interval = retransmit_interval
        self.max_attempts = max_attempts
        self.grace = grace
        self.stats = LinkStats()
        #: Acked markers -> activate_at, insertion-ordered so pruning
        #: pops from the front (keys are sent in activation order).
        self._acked: "Dict[Tuple[int, float], float]" = {}
        self.tracer: Optional[Tracer] = None
        self._spans: "Dict[Tuple[int, float], Span]" = {}

    @property
    def dedup_markers(self) -> int:
        """Markers currently held for dedup; bounded by the grace window."""
        return len(self._acked)

    def send(self, update: KeyUpdate) -> None:
        """Push one key update reliably."""
        if self.tracer is not None:
            marker = (update.serial, update.activate_at)
            span = self.tracer.start_span(
                "KEYPUSH.reliable", now=self.link.sim.now, kind="link"
            )
            span.annotate("serial", update.serial)
            self._spans[marker] = span
        self._attempt(update, attempt=1)

    def _attempt(self, update: KeyUpdate, attempt: int) -> None:
        marker = (update.serial, update.activate_at)
        if marker in self._acked:
            return
        if attempt > self.max_attempts or (
            attempt > 1 and self.link.sim.now > update.activate_at + self.retransmit_interval
        ):
            # A newer key has superseded this one; stop trying.
            self.stats.abandoned += 1
            self._finish_span(marker, abandoned=True)
            return
        self.stats.sent += 1
        if attempt > 1:
            self.stats.retransmissions += 1
        span = self._spans.get(marker)
        if span is not None:
            span.annotate("attempts", attempt)
            span.network_time += self.link.one_way_delay
        self.link.transmit(lambda: self._delivered(update))
        self.link.sim.schedule(
            self.retransmit_interval, lambda sim: self._attempt(update, attempt + 1)
        )

    def _delivered(self, update: KeyUpdate) -> None:
        span = self._spans.get((update.serial, update.activate_at))
        if self.tracer is not None and span is not None:
            # Reinstate the link span's context so whatever the
            # receiver's on_key handler does (decrypt, cascade to its
            # own children) nests under this delivery.
            with self.tracer.using(span.context):
                ack_marker = self.receiver.receive(update)
        else:
            ack_marker = self.receiver.receive(update)
        # The ACK travels back over the same lossy path.
        self.link.transmit(lambda: self._acknowledge(ack_marker))

    def _acknowledge(self, marker: Tuple[int, float]) -> None:
        if marker not in self._acked:
            self._acked[marker] = marker[1]
            self.stats.acked += 1
            self._finish_span(marker, abandoned=False)
            self._prune(self.link.sim.now)

    def _finish_span(self, marker: Tuple[int, float], abandoned: bool) -> None:
        span = self._spans.pop(marker, None)
        if span is not None and self.tracer is not None:
            if abandoned:
                span.annotate("abandoned", True)
            self.tracer.finish(span, now=self.link.sim.now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.grace
        while self._acked:
            oldest = next(iter(self._acked))
            if self._acked[oldest] >= cutoff:
                break
            del self._acked[oldest]


class ReliableKeyReceiver:
    """Child-side receiver: dedup by serial, hand fresh keys upward.

    ``clock`` (when available) drives pruning of the dedup markers;
    without one, the incoming update's ``activate_at`` stands in for
    the current time -- activations are monotone, so either way
    markers older than the grace window are dropped instead of
    accumulating one per epoch forever.
    """

    def __init__(
        self,
        on_key: DeliveryHandler,
        clock: Optional[Callable[[], float]] = None,
        grace: float = DEDUP_GRACE,
    ) -> None:
        self._on_key = on_key
        self.clock = clock
        self.grace = grace
        self._seen: "Dict[Tuple[int, float], float]" = {}
        self.stats = LinkStats()

    @property
    def dedup_markers(self) -> int:
        """Markers currently held for dedup; bounded by the grace window."""
        return len(self._seen)

    def receive(self, update: KeyUpdate) -> Tuple[int, float]:
        """Process one (possibly duplicate) delivery; returns the ACK
        marker.  Duplicates are acknowledged but not re-delivered --
        the ACK, not the payload, is what stops retransmission."""
        marker = (update.serial, update.activate_at)
        self.stats.delivered += 1
        if marker not in self._seen:
            self._seen[marker] = update.activate_at
            self._on_key(update)
        now = self.clock() if self.clock is not None else update.activate_at
        cutoff = now - self.grace
        while self._seen:
            oldest = next(iter(self._seen))
            if self._seen[oldest] >= cutoff:
                break
            del self._seen[oldest]
        return marker


def reliable_link_pair(
    sim: Simulator,
    rng: random.Random,
    on_key: DeliveryHandler,
    one_way_delay: float = 0.03,
    loss_probability: float = 0.1,
    retransmit_interval: float = 0.5,
    grace: float = DEDUP_GRACE,
) -> Tuple[ReliableKeySender, ReliableKeyReceiver]:
    """Convenience constructor for one parent->child reliable channel."""
    receiver = ReliableKeyReceiver(on_key, clock=lambda: sim.now, grace=grace)
    link = LossyLink(sim, rng, one_way_delay, loss_probability)
    sender = ReliableKeySender(link, receiver, retransmit_interval, grace=grace)
    return sender, receiver

"""A peer in one channel's distribution overlay.

The peer is where the DRM's *distributed* half runs (Sections IV-C,
IV-E): join admission is just four local checks against the Channel
Ticket (signature, expiry, NetAddr, carried channel), after which the
peer mints a pair-wise session key, and thereafter re-encrypts each
rotating content key once per child.  Content *packets* are forwarded
verbatim -- they are encrypted end-to-end by the Channel Server, so
forwarding costs no cryptography.

A peer also polices its children's ticket lifetimes: "a peer will
terminate a peering relationship whose Channel Ticket has expired if a
renewal ticket is not presented" (Section IV-D) -- the distributed
enforcement point for the one-location-per-account rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.client import Client
from repro.core.keystream import ContentKey
from repro.core.packets import (
    ContentPacket,
    reencrypt_key_for_link,
    reencrypt_key_for_links,
)
from repro.metrics.dataplane import counters as dataplane_counters
from repro.core.protocol import (
    JoinAccept,
    JoinReject,
    JoinRequest,
    KeyUpdate,
    PeerDescriptor,
)
from repro.core.tickets import ChannelTicket
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPublicKey
from repro.crypto.stream import SymmetricKey
from repro.errors import AuthorizationError, OverlayError, ReplayError, ReproError
from repro.p2p.scorecard import MISSING_KEY, POLLUTION, REPLAY
from repro.p2p.substreams import SubstreamAssignment
from repro.trace.span import Tracer, maybe_span


@dataclass
class ChildLink:
    """One accepted child relationship."""

    user_id: int
    session_key: SymmetricKey
    ticket: ChannelTicket
    child_peer: Optional["Peer"] = None
    substreams: Optional[List[int]] = None

    @property
    def ticket_expiry(self) -> float:
        return self.ticket.expire_time


class Peer:
    """One overlay member wrapping a DRM :class:`Client`.

    Parameters
    ----------
    peer_id:
        Stable overlay identifier (the deployment derives it from the
        UserIN).
    client:
        The wrapped DRM endpoint; its Channel Ticket admits this peer,
        its key ring decrypts the stream.
    channel_id:
        The channel this peer carries (a peer carries exactly one at a
        time, Section III).
    cm_public_key:
        The Channel Manager key used to verify joiners' tickets; known
        from the channel description.
    capacity:
        Maximum simultaneous children (uplink budget).
    """

    def __init__(
        self,
        peer_id: str,
        client: Client,
        channel_id: str,
        cm_public_key: RsaPublicKey,
        drbg: HmacDrbg,
        capacity: int = 4,
        region: str = "?",
        asn: int = 0,
    ) -> None:
        #: Membership-event hook, set by the owning overlay when the
        #: peer registers: fires on every state change a ranking can
        #: observe (child capacity deltas, depth adoption, locality
        #: edits, departure) so the overlay's candidate index stays
        #: current without polling.  None = unregistered (no-op).
        self.membership_listener: Optional[Callable[["Peer"], None]] = None
        self.peer_id = peer_id
        self.client = client
        self.channel_id = channel_id
        self.cm_public_key = cm_public_key
        self.capacity = capacity
        self._region = region
        self._asn = asn
        self._depth = 0
        self._drbg = drbg
        self.children: Dict[int, ChildLink] = {}
        self.alive = True
        self.joins_accepted = 0
        self.joins_rejected = 0
        self.key_updates_sent = 0
        self.packets_forwarded = 0
        #: Packets this peer could not decrypt and refused to forward
        #: (lost authorization, or hijacked/corrupted content).
        self.packets_dropped_undecryptable = 0
        #: Shared tracer, attached by Deployment.enable_tracing().
        self.tracer: Optional[Tracer] = None
        #: Shared CryptoPool, attached by Deployment.enable_multicore():
        #: the key fan-out in :meth:`push_key_update` runs its
        #: per-child sealing on worker processes.  None = in-process.
        self.crypto_pool = None
        #: Shared PeerScorecard, attached by
        #: Deployment.enable_misbehavior_detection().  When present,
        #: undecryptable packets and replayed key updates are
        #: attributed to the forwarding parent.  None = no detection.
        self.scorecard = None

    @property
    def address(self) -> str:
        """The network address (the wrapped client's NetAddr)."""
        return self.client.net_addr

    @property
    def region(self) -> str:
        """Locality hint; writes publish a membership event (region is
        a candidate-index bucket key)."""
        return self._region

    @region.setter
    def region(self, value: str) -> None:
        if value == self._region:
            return
        self._region = value
        self._publish_membership_event()

    @property
    def asn(self) -> int:
        """Autonomous system number (0 = unknown / undisclosed); used
        by the ranked peer-list pipeline for same-AS preference.
        Writes publish a membership event (AS is a bucket key)."""
        return self._asn

    @asn.setter
    def asn(self, value: int) -> None:
        if value == self._asn:
            return
        self._asn = value
        self._publish_membership_event()

    @property
    def depth(self) -> int:
        """Advisory hop distance from the source, maintained by the
        overlay at join/repair time and refreshed by key-update
        heartbeats.  The ranked peer-list pipeline prefers shallow
        parents (startup/key latency proxy); ranking purely by spare
        capacity would herd every joiner onto the newest member and
        grow chains instead of trees.  Writes publish a membership
        event (depth is a ranking input the candidate index caches)."""
        return self._depth

    @depth.setter
    def depth(self, value: int) -> None:
        if value == self._depth:
            return
        self._depth = value
        self._publish_membership_event()

    def _publish_membership_event(self) -> None:
        if self.membership_listener is not None:
            self.membership_listener(self)

    def descriptor(self) -> PeerDescriptor:
        """This peer as a peer-list entry, with locality/capacity hints."""
        return PeerDescriptor(
            peer_id=self.peer_id,
            address=self.address,
            region=self.region,
            asn=self.asn,
            spare_capacity=self.spare_capacity,
        )

    @property
    def spare_capacity(self) -> int:
        """Child slots still free."""
        return max(0, self.capacity - len(self.children))

    # ------------------------------------------------------------------
    # Join admission (Fig. 4c)
    # ------------------------------------------------------------------

    def current_content_key(self, now: float) -> ContentKey:
        """The content key a joiner should receive (latest held)."""
        serials = self.client.key_ring.serials()
        if not serials:
            raise OverlayError(f"peer {self.peer_id} holds no content key")
        return self.client.key_ring.get(serials[-1])

    def handle_join(self, request: JoinRequest, observed_addr: str, now: float):
        """Admit or reject a joiner; returns JoinAccept or JoinReject.

        Admission runs the target-peer checks of Section IV-C -- and
        nothing more: "It does not need to evaluate channel viewing
        policies and it does not have access to any other user
        attributes."
        """
        with maybe_span(
            self.tracer, "JOIN.serve", now=now, kind="server", peer=self.peer_id
        ) as span:
            result = self._handle_join(request, observed_addr, now)
            if span is not None and isinstance(result, JoinReject):
                span.annotate("rejected", result.reason)
            return result

    def _handle_join(self, request: JoinRequest, observed_addr: str, now: float):
        if not self.alive:
            return JoinReject(peer_id=self.peer_id, reason="peer offline")
        ticket = request.channel_ticket
        try:
            ticket.verify(
                self.cm_public_key,
                now=now,
                expected_channel=self.channel_id,
                observed_addr=observed_addr,
            )
        except ReproError as exc:
            self.joins_rejected += 1
            return JoinReject(peer_id=self.peer_id, reason=f"ticket invalid: {exc}")
        if self.spare_capacity <= 0:
            self.joins_rejected += 1
            return JoinReject(peer_id=self.peer_id, reason="no capacity")

        session_key = SymmetricKey.generate(self._drbg)
        try:
            content_key = self.current_content_key(now)
        except OverlayError as exc:
            self.joins_rejected += 1
            return JoinReject(peer_id=self.peer_id, reason=str(exc))
        self.children[ticket.user_id] = ChildLink(
            user_id=ticket.user_id, session_key=session_key, ticket=ticket
        )
        self.joins_accepted += 1
        self._publish_membership_event()
        return JoinAccept(
            peer_id=self.peer_id,
            encrypted_session_key=ticket.client_public_key.encrypt(
                session_key.material, self._drbg
            ),
            encrypted_content_key=reencrypt_key_for_link(
                content_key, session_key, self.channel_id
            ),
            content_key_serial=content_key.serial,
        )

    def bind_child_peer(self, user_id: int, child: "Peer") -> None:
        """Attach the child's Peer object so pushes can reach it."""
        link = self.children.get(user_id)
        if link is None:
            raise OverlayError(f"no child link for user {user_id}")
        link.child_peer = child

    def set_child_substreams(self, user_id: int, substreams: List[int]) -> None:
        """Restrict which sub-streams flow to a child over this link."""
        link = self.children.get(user_id)
        if link is None:
            raise OverlayError(f"no child link for user {user_id}")
        link.substreams = list(substreams)

    # ------------------------------------------------------------------
    # Key distribution (Section IV-E)
    # ------------------------------------------------------------------

    def push_key_to_children(self, content_key: ContentKey, now: float) -> int:
        """Re-encrypt and push one content key to every child.

        Returns the number of link messages sent.  Propagation is
        recursive: each child peer that newly learns the key pushes it
        to its own children, exactly the A->B->{D,E} cascade of the
        paper's example.
        """
        with maybe_span(
            self.tracer, "KEYPUSH", now=now, kind="push",
            peer=self.peer_id, serial=content_key.serial,
        ) as span:
            sent = self._push_key_to_children(content_key, now)
            if span is not None:
                span.annotate("sent", sent)
            return sent

    def _push_key_to_children(self, content_key: ContentKey, now: float) -> int:
        return self.push_key_update(content_key, now)

    def push_key_update(self, content_key: ContentKey, now: float) -> int:
        """Batched fan-out: one key, every child, invariants built once.

        The parts of the per-child message that do not vary -- channel
        id, serial, activation time, the AAD and key-material plaintext
        inside :func:`reencrypt_key_for_links` -- are prepared once for
        the whole batch; the per-child work is exactly one session-key
        encryption and one :class:`KeyUpdate` construction.  Returns
        the number of link messages sent (including the recursive
        cascade through children that newly learned the key).
        """
        links = list(self.children.values())
        if not links:
            return 0
        blobs = reencrypt_key_for_links(
            content_key,
            (link.session_key for link in links),
            self.channel_id,
            pool=self.crypto_pool,
        )
        channel_id = self.channel_id
        serial = content_key.serial
        activate_at = content_key.activate_at
        self.key_updates_sent += len(links)
        dataplane_counters.fanout_messages += len(links)
        dataplane_counters.fanout_batches += 1
        sent = len(links)
        for link, blob in zip(links, blobs):
            if link.child_peer is None:
                continue
            update = KeyUpdate(
                channel_id=channel_id,
                serial=serial,
                encrypted_content_key=blob,
                activate_at=activate_at,
                parent_depth=self.depth,
            )
            sent += link.child_peer.receive_key_update(update, parent=self, now=now)
        return sent

    def receive_key_update(self, update: KeyUpdate, parent: "Peer", now: float) -> int:
        """Decrypt a pushed key; if new, cascade to our children."""
        with maybe_span(
            self.tracer, "KEYPUSH.recv", now=now, kind="push",
            peer=self.peer_id, serial=update.serial,
        ) as span:
            try:
                fresh = self.client.receive_key_update(
                    update, parent_id=parent.peer_id
                )
            except ReplayError:
                # The parent pushed a key older than the replay window:
                # either it is far behind the stream (useless as a
                # parent) or it is mounting a replay attack.  Both are
                # reasons to route around it.
                if span is not None:
                    span.annotate("replay_rejected", True)
                if self.scorecard is not None:
                    self.scorecard.report(parent.peer_id, REPLAY, now=now)
                return 0
            # Heartbeat: the update carries the sender's depth, so our
            # own depth refreshes once per key epoch instead of only at
            # join time.  (AdversarialPeer overrides this to keep its
            # advertised lie.)
            self._adopt_heartbeat_depth(update)
            if not fresh:
                if span is not None:
                    span.annotate("duplicate", True)
                return 0
            content_key = self.client.key_ring.get(update.serial)
            return self._push_key_to_children(content_key, now)

    def _adopt_heartbeat_depth(self, update: KeyUpdate) -> None:
        if update.parent_depth >= 0:
            self.depth = update.parent_depth + 1

    # ------------------------------------------------------------------
    # Content forwarding
    # ------------------------------------------------------------------

    def forward_packet(self, packet: ContentPacket, substream_count: int = 1) -> int:
        """Forward a packet to children subscribed to its sub-stream.

        Packets travel unmodified (end-to-end encrypted by the Channel
        Server).  Returns the number of children reached.
        """
        assignment = SubstreamAssignment(substream_count)
        substream = assignment.substream_of(packet.sequence)
        reached = 0
        for link in self.children.values():
            if link.substreams is not None and substream not in link.substreams:
                continue
            if link.child_peer is None:
                continue
            self.packets_forwarded += 1
            dataplane_counters.packets_forwarded += 1
            reached += 1
            link.child_peer.deliver_packet(packet, substream_count, from_peer=self)
        return reached

    def deliver_packet(
        self,
        packet: ContentPacket,
        substream_count: int = 1,
        from_peer: Optional["Peer"] = None,
    ) -> None:
        """Receive a packet: decrypt for local playback, then forward."""
        try:
            self.client.receive_packet(packet)
        except ReproError:
            # Undecryptable content (we lost authorization, or the
            # channel was hijacked) is not forwarded onward.  Counted:
            # a rising drop rate is how hijack and authorization-loss
            # events become observable in ``Deployment.metrics``.
            self.packets_dropped_undecryptable += 1
            dataplane_counters.packets_dropped_undecryptable += 1
            self._attribute_bad_packet(packet, from_peer)
            return
        self.forward_packet(packet, substream_count)

    def _attribute_bad_packet(
        self, packet: ContentPacket, from_peer: Optional["Peer"]
    ) -> None:
        """Charge an undecryptable packet to the parent that sent it.

        Holding the packet's key means the ciphertext failed its AEAD
        tag -- the parent forwarded polluted bytes.  Not holding the
        key is weaker evidence (we may simply be behind), so it counts
        as key-withholding *suspicion* at reduced weight.
        """
        if self.scorecard is None or from_peer is None:
            return
        if self.client.key_ring.has(packet.serial):
            self.scorecard.report(from_peer.peer_id, POLLUTION)
        else:
            self.scorecard.report(from_peer.peer_id, MISSING_KEY, weight=0.5)

    # ------------------------------------------------------------------
    # Ticket-expiry enforcement (Section IV-D)
    # ------------------------------------------------------------------

    def present_renewal(self, user_id: int, renewed: ChannelTicket, now: float) -> None:
        """A child presents its renewal ticket before expiry.

        The renewal bit must be set and the ticket must verify for the
        same user, channel, and address as the original link.
        """
        link = self.children.get(user_id)
        if link is None:
            raise OverlayError(f"no child link for user {user_id}")
        if not renewed.renewal:
            raise AuthorizationError("presented ticket has no renewal bit")
        renewed.verify(
            self.cm_public_key,
            now=now,
            expected_channel=self.channel_id,
            observed_addr=link.ticket.net_addr,
        )
        if renewed.user_id != user_id:
            raise AuthorizationError("renewal ticket for a different user")
        link.ticket = renewed

    def enforce_ticket_expiry(self, now: float, grace: float = 0.0) -> List[int]:
        """Sever children whose tickets expired without renewal.

        Returns the severed user ids.  ``grace`` tolerates in-flight
        renewals.
        """
        severed: List[int] = []
        for user_id, link in list(self.children.items()):
            if now > link.ticket_expiry + grace:
                self.sever_child(user_id)
                severed.append(user_id)
        return severed

    def sever_child(self, user_id: int) -> None:
        """Terminate one peering relationship."""
        link = self.children.pop(user_id, None)
        if link is not None:
            self._publish_membership_event()
            if link.child_peer is not None:
                link.child_peer.client.drop_parent(self.peer_id)

    def leave(self) -> List["Peer"]:
        """Leave the overlay; returns orphaned child peers for repair.

        Only *live* children count as orphans: a stale link to a child
        that already departed (it never said goodbye) must not be
        resurrected by the repair machinery.
        """
        self.alive = False
        self._publish_membership_event()
        orphans = []
        for user_id, link in list(self.children.items()):
            if link.child_peer is not None and link.child_peer.alive:
                orphans.append(link.child_peer)
            self.sever_child(user_id)
        return orphans

    def detach_child_link(self, user_id: int) -> bool:
        """Drop the link to a departing child without touching the
        child's own state (the child is leaving; it cleans itself up).
        Returns True if a link existed."""
        if self.children.pop(user_id, None) is None:
            return False
        self._publish_membership_event()
        return True

"""Churn processes: peer arrivals and departures over time.

Live broadcast churn is not memoryless: arrivals spike at event
boundaries (the paper's core premise of "highly correlated service
request arrivals") and holding times are program-length-shaped.  This
module provides both a plain Poisson churn for unit tests and the
correlated event-boundary churn used by experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change."""

    time: float
    kind: str  # "join" or "leave"
    peer_index: int


class PoissonChurn:
    """Independent Poisson joins with exponential holding times.

    The baseline model: no correlation between peers.  Used to test
    overlay repair machinery under steady churn.
    """

    def __init__(
        self,
        rng: random.Random,
        arrival_rate: float,
        mean_holding_time: float,
    ) -> None:
        if arrival_rate <= 0 or mean_holding_time <= 0:
            raise ValueError("rates must be positive")
        self._rng = rng
        self.arrival_rate = arrival_rate
        self.mean_holding_time = mean_holding_time

    def generate(self, horizon: float) -> List[ChurnEvent]:
        """All join/leave events in [0, horizon], time-ordered."""
        events: List[ChurnEvent] = []
        time = 0.0
        index = 0
        while True:
            time += self._rng.expovariate(self.arrival_rate)
            if time >= horizon:
                break
            events.append(ChurnEvent(time=time, kind="join", peer_index=index))
            departure = time + self._rng.expovariate(1.0 / self.mean_holding_time)
            if departure < horizon:
                events.append(ChurnEvent(time=departure, kind="leave", peer_index=index))
            index += 1
        events.sort(key=lambda e: (e.time, e.kind == "leave", e.peer_index))
        return events


class EventBoundaryChurn:
    """Correlated churn around a live event's start and end.

    A fraction ``early_fraction`` of the audience trickles in before
    the start; the rest arrive in a flash crowd within
    ``crowd_window`` seconds of the start time.  Departures cluster
    symmetrically at the end.  This is the arrival pattern that makes
    playback-time license acquisition (traditional DRM) require
    peak-load provisioning -- and that the ticket architecture absorbs.
    """

    def __init__(
        self,
        rng: random.Random,
        audience: int,
        event_start: float,
        event_end: float,
        crowd_window: float = 120.0,
        early_fraction: float = 0.2,
        straggler_fraction: float = 0.1,
    ) -> None:
        if event_end <= event_start:
            raise ValueError("event must end after it starts")
        if audience < 0:
            raise ValueError("audience must be non-negative")
        self._rng = rng
        self.audience = audience
        self.event_start = event_start
        self.event_end = event_end
        self.crowd_window = crowd_window
        self.early_fraction = early_fraction
        self.straggler_fraction = straggler_fraction

    def generate(self) -> List[ChurnEvent]:
        """Join/leave events for the whole audience, time-ordered."""
        events: List[ChurnEvent] = []
        for index in range(self.audience):
            roll = self._rng.random()
            if roll < self.early_fraction:
                # Early tuners: uniform over the 15 minutes before start.
                join = self.event_start - self._rng.uniform(0.0, 900.0)
            elif roll < self.early_fraction + self.straggler_fraction:
                # Stragglers: uniform over the event's first quarter.
                join = self.event_start + self._rng.uniform(
                    0.0, (self.event_end - self.event_start) / 4.0
                )
            else:
                # The flash crowd: exponential decay after the start.
                join = self.event_start + self._rng.expovariate(3.0 / self.crowd_window)
            join = max(0.0, join)
            leave = self.event_end + self._rng.gauss(0.0, self.crowd_window / 2.0)
            leave = max(join + 1.0, leave)
            events.append(ChurnEvent(time=join, kind="join", peer_index=index))
            events.append(ChurnEvent(time=leave, kind="leave", peer_index=index))
        events.sort(key=lambda e: (e.time, e.kind == "leave", e.peer_index))
        return events

    def arrival_times(self) -> List[float]:
        """Join times only (for arrival-burstiness analyses)."""
        return [e.time for e in self.generate() if e.kind == "join"]


class FlashCrowdChurn:
    """The worst-case arrival process: a steep ramp plus mid-event churn.

    Sharper than :class:`EventBoundaryChurn`: essentially the whole
    audience piles in within a few multiples of ``ramp`` seconds after
    the start -- no early trickle softens the peak, so the Channel
    Manager's peer lists are built while capacities saturate in waves.
    A ``mid_departure_fraction`` of the audience then leaves *during*
    the event (casual viewers churning out), which is what exercises
    overlay repair while the tree is still under join pressure; the
    rest leave in the usual cluster at the event's end.
    """

    def __init__(
        self,
        rng: random.Random,
        audience: int,
        event_start: float = 0.0,
        event_duration: float = 3600.0,
        ramp: float = 60.0,
        mid_departure_fraction: float = 0.15,
    ) -> None:
        if audience < 0:
            raise ValueError("audience must be non-negative")
        if event_duration <= 0 or ramp <= 0:
            raise ValueError("event_duration and ramp must be positive")
        if not 0.0 <= mid_departure_fraction <= 1.0:
            raise ValueError("mid_departure_fraction must be a fraction")
        self._rng = rng
        self.audience = audience
        self.event_start = event_start
        self.event_duration = event_duration
        self.ramp = ramp
        self.mid_departure_fraction = mid_departure_fraction

    @property
    def event_end(self) -> float:
        return self.event_start + self.event_duration

    def generate(self) -> List[ChurnEvent]:
        """Join/leave events for the whole audience, time-ordered."""
        events: List[ChurnEvent] = []
        for index in range(self.audience):
            # Exponential decay after the start: ~95% of the audience
            # inside the ramp window.
            join = self.event_start + self._rng.expovariate(3.0 / self.ramp)
            if self._rng.random() < self.mid_departure_fraction:
                # Churns out mid-event, somewhere in the middle half.
                leave = self.event_start + self.event_duration * self._rng.uniform(
                    0.25, 0.75
                )
            else:
                leave = self.event_end + self._rng.gauss(0.0, self.ramp / 2.0)
            leave = max(join + 1.0, leave)
            events.append(ChurnEvent(time=join, kind="join", peer_index=index))
            events.append(ChurnEvent(time=leave, kind="leave", peer_index=index))
        events.sort(key=lambda e: (e.time, e.kind == "leave", e.peer_index))
        return events

    def arrival_times(self) -> List[float]:
        """Join times only (for arrival-burstiness analyses)."""
        return [e.time for e in self.generate() if e.kind == "join"]

"""Canonical binary encoding for tickets and protocol messages.

Digital signatures only make sense over a *canonical* byte string: the
same ticket must serialize identically on the signer and every
verifier.  This module provides a tiny deterministic length-prefixed
codec -- explicit, boring, and with no reflection magic -- used by
every signed structure in the library.

Format primitives (all big-endian):

========  ===========================================
``u8``    1-byte unsigned integer
``u32``   4-byte unsigned integer
``u64``   8-byte unsigned integer
``f64``   IEEE-754 double (used for virtual timestamps)
``bytes`` u32 length prefix + raw bytes
``str``   ``bytes`` of the UTF-8 encoding
``bool``  u8 0 or 1
========  ===========================================

Optional floats (the paper's NULL timestamps) encode as a presence
byte followed by the value when present.
"""

from __future__ import annotations

import struct
from typing import List, Optional

from repro.errors import ReproError


class WireError(ReproError):
    """Raised when a buffer cannot be decoded."""


#: Alias kept alongside :class:`WireError`: malformed *content* (as
#: opposed to truncation) is a format violation; both are the same
#: failure class to callers.
WireFormatError = WireError


class Encoder:
    """Append-only canonical encoder."""

    def __init__(self) -> None:
        self._parts: List[bytes] = []

    def put_u8(self, value: int) -> "Encoder":
        if not 0 <= value <= 0xFF:
            raise ValueError(f"u8 out of range: {value}")
        self._parts.append(struct.pack(">B", value))
        return self

    def put_u32(self, value: int) -> "Encoder":
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"u32 out of range: {value}")
        self._parts.append(struct.pack(">I", value))
        return self

    def put_u64(self, value: int) -> "Encoder":
        if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
            raise ValueError(f"u64 out of range: {value}")
        self._parts.append(struct.pack(">Q", value))
        return self

    def put_f64(self, value: float) -> "Encoder":
        self._parts.append(struct.pack(">d", value))
        return self

    def put_opt_f64(self, value: Optional[float]) -> "Encoder":
        """NULL-able timestamp: presence byte + value."""
        if value is None:
            self._parts.append(b"\x00")
        else:
            self._parts.append(b"\x01" + struct.pack(">d", value))
        return self

    def put_bool(self, value: bool) -> "Encoder":
        self._parts.append(b"\x01" if value else b"\x00")
        return self

    def put_bytes(self, value: bytes) -> "Encoder":
        self.put_u32(len(value))
        self._parts.append(bytes(value))
        return self

    def put_str(self, value: str) -> "Encoder":
        return self.put_bytes(value.encode("utf-8"))

    def to_bytes(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Sequential decoder over a byte buffer.

    Raises :class:`WireError` on truncation or malformed content; a
    fully consumed buffer can be asserted with :meth:`finish`.

    The decoder reads through a :class:`memoryview`, so slicing never
    copies: nested structures decode via :meth:`get_view`, which hands
    the inner decoder a window into the *same* underlying buffer.  A
    ``bytes`` input is wrapped directly (immutable, safe to alias); a
    ``bytearray`` is snapshotted first, because the caller could
    mutate it mid-decode and because an outstanding view would pin the
    bytearray against resizing.
    """

    def __init__(self, buffer: bytes) -> None:
        if isinstance(buffer, bytes):
            view = memoryview(buffer)
        elif isinstance(buffer, bytearray):
            view = memoryview(bytes(buffer))
        elif isinstance(buffer, memoryview):
            try:
                view = buffer.cast("B")
            except (TypeError, ValueError) as exc:
                raise WireError("decoder needs a contiguous byte buffer") from exc
        else:
            raise WireError(
                f"decoder needs a byte buffer, got {type(buffer).__name__}"
            )
        self._buf = view
        self._pos = 0

    def _take(self, n: int) -> memoryview:
        if n < 0:
            raise WireError(f"negative read of {n} bytes")
        if self._pos + n > len(self._buf):
            raise WireError(
                f"truncated buffer: need {n} bytes at {self._pos}, have {len(self._buf)}"
            )
        chunk = self._buf[self._pos : self._pos + n]
        self._pos += n
        return chunk

    def get_u8(self) -> int:
        return struct.unpack(">B", self._take(1))[0]

    def get_u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def get_u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def get_f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def get_opt_f64(self) -> Optional[float]:
        present = self.get_u8()
        if present == 0:
            return None
        if present != 1:
            raise WireError(f"bad presence byte {present}")
        return self.get_f64()

    def get_bool(self) -> bool:
        value = self.get_u8()
        if value not in (0, 1):
            raise WireError(f"bad bool byte {value}")
        return bool(value)

    def get_bytes(self) -> bytes:
        length = self.get_u32()
        return bytes(self._take(length))

    def get_view(self) -> memoryview:
        """Zero-copy :meth:`get_bytes`: a window into the same buffer.

        Used for nested records -- ``Decoder(outer.get_view())`` walks
        the inner structure without materializing an intermediate
        ``bytes`` copy.  The view aliases the outer buffer; callers
        that need to retain the data past the decode must copy it
        (``bytes(view)``).
        """
        length = self.get_u32()
        return self._take(length)

    def get_count(self, min_item_size: int = 1) -> int:
        """Read a u32 element count, bounded by the remaining buffer.

        A hostile blob can claim a ~4-billion element list in four
        bytes; decoding loops that trust it would spin (and allocate)
        for minutes before hitting the truncation error.  Each element
        of any encoded sequence occupies at least ``min_item_size``
        bytes, so any honest count satisfies
        ``count * min_item_size <= remaining`` -- enforce that before
        the loop starts.
        """
        if min_item_size < 1:
            raise ValueError("min_item_size must be >= 1")
        count = self.get_u32()
        if count * min_item_size > self.remaining:
            raise WireError(
                f"claimed count {count} exceeds remaining buffer "
                f"({self.remaining} bytes, >= {min_item_size} per element)"
            )
        return count

    def get_str(self) -> str:
        raw = self._take(self.get_u32())
        try:
            # str() decodes straight from the view -- no bytes copy.
            return str(raw, "utf-8")
        except UnicodeDecodeError as exc:
            raise WireError("invalid UTF-8 in string field") from exc

    @property
    def remaining(self) -> int:
        return len(self._buf) - self._pos

    def finish(self) -> None:
        """Assert the buffer was fully consumed."""
        if self.remaining != 0:
            raise WireError(f"{self.remaining} trailing bytes after decode")

"""Shared utilities: canonical wire encoding and id/name helpers."""

from repro.util.wire import Encoder, Decoder, WireError

__all__ = ["Encoder", "Decoder", "WireError"]

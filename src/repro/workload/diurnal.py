"""The diurnal viewing curve.

Fig. 5 of the paper plots concurrent users over a week: a deep
overnight trough (the paper's latency spikes "all occurring between
0AM-6AM" are small-sample artifacts of this trough), a daytime
shoulder, and a sharp evening peak.  Fig. 6 splits the day into peak
hours (18:00--24:00) and off-peak (00:00--18:00).

:class:`DiurnalProfile` maps an hour-of-day to a rate multiplier in
[0, 1] using a piecewise-linear curve through calibrated anchor
points, optionally modulated by a day-of-week factor (weekend
afternoons run hotter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

#: The paper's peak-hours definition (Section VI): 18:00 to midnight.
PEAK_START_HOUR = 18
PEAK_END_HOUR = 24

#: Anchor points (hour, multiplier) for a television-shaped day.
_DEFAULT_ANCHORS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.30),
    (2.0, 0.10),
    (5.0, 0.04),
    (7.0, 0.12),
    (9.0, 0.22),
    (12.0, 0.35),
    (14.0, 0.30),
    (17.0, 0.45),
    (19.0, 0.80),
    (20.5, 1.00),
    (22.0, 0.90),
    (24.0, 0.30),
)

#: Mild weekly modulation: weekends watch more daytime TV.
_DAY_FACTORS = (1.00, 0.98, 0.98, 1.00, 1.05, 1.15, 1.12)  # Mon..Sun


def is_peak_hour(hour_of_day: float) -> bool:
    """The paper's peak/off-peak split (Section VI)."""
    return PEAK_START_HOUR <= (hour_of_day % 24.0) < PEAK_END_HOUR


@dataclass
class DiurnalProfile:
    """Hour-of-day to rate-multiplier curve."""

    anchors: Sequence[Tuple[float, float]] = _DEFAULT_ANCHORS
    day_factors: Sequence[float] = _DAY_FACTORS

    def multiplier(self, time_seconds: float) -> float:
        """Rate multiplier at an absolute time (seconds from Monday 00:00)."""
        hour = (time_seconds / 3600.0) % 24.0
        day = int(time_seconds // 86400.0) % 7
        return self._interpolate(hour) * self.day_factors[day]

    def _interpolate(self, hour: float) -> float:
        anchors = list(self.anchors)
        for (h0, v0), (h1, v1) in zip(anchors, anchors[1:]):
            if h0 <= hour <= h1:
                if h1 == h0:
                    return v1
                frac = (hour - h0) / (h1 - h0)
                return v0 + frac * (v1 - v0)
        return anchors[-1][1]

    def peak_multiplier(self) -> float:
        """The maximum multiplier over the day."""
        return max(v for _, v in self.anchors) * max(self.day_factors)

    def hourly_table(self) -> List[float]:
        """Multiplier sampled at each of the 24 hour marks (Monday)."""
        return [self._interpolate(float(h)) for h in range(24)]


def concurrent_users_curve(
    profile: DiurnalProfile,
    peak_concurrent: int,
    horizon: float,
    step: float = 300.0,
) -> List[Tuple[float, int]]:
    """A (time, concurrent-users) series over ``horizon`` seconds.

    Scales the profile so its weekly maximum hits ``peak_concurrent``
    -- the knob experiments use to match the paper's ~25-30k peak.
    """
    scale = peak_concurrent / profile.peak_multiplier()
    series: List[Tuple[float, int]] = []
    t = 0.0
    while t <= horizon:
        series.append((t, int(round(profile.multiplier(t) * scale))))
        t += step
    return series

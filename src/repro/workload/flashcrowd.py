"""Flash-crowd viewer population: geography + capacity over churn.

:class:`~repro.p2p.churn.FlashCrowdChurn` says *when* peers come and
go; this module says *who* they are.  Each viewer gets a region drawn
from the deployment geography's population weights (restricted to the
regions the channel actually broadcasts to) and a heterogeneous upload
capacity -- the paper's population mixes set-top boxes behind thin DSL
uplinks (contributing little or nothing) with well-connected peers
that carry most of the tree.  The capacity spread is what makes the
capacity-aware ranking and sub-stream weighting measurable: under a
uniform population every parent choice is as good as any other.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.geo.regions import REGIONS

#: Default upload-capacity mix: a tenth contribute nothing (leechers on
#: asymmetric links), most carry 2-4 children, a well-connected tail
#: carries 8.
DEFAULT_CAPACITIES: Tuple[int, ...] = (0, 2, 4, 8)
DEFAULT_CAPACITY_WEIGHTS: Tuple[float, ...] = (0.10, 0.40, 0.35, 0.15)


@dataclass(frozen=True)
class ViewerSpec:
    """One synthetic viewer: identity, placement, capacity, lifetime."""

    index: int
    region: str
    capacity: int
    join_time: float
    leave_time: float


class FlashCrowdWorkload:
    """Assign regions and capacities to a flash-crowd churn process.

    Parameters
    ----------
    rng:
        Workload-local randomness (determinism under a fixed seed).
    audience:
        Number of viewers.
    regions:
        Regions the event broadcasts to; viewer placement is drawn from
        :data:`repro.geo.regions.REGIONS` population weights restricted
        to (and renormalized over) this set.  None = all regions.
    capacities / capacity_weights:
        The upload-capacity mix.
    Remaining keywords are forwarded to :class:`FlashCrowdChurn`.
    """

    def __init__(
        self,
        rng: random.Random,
        audience: int,
        regions: Optional[Sequence[str]] = None,
        capacities: Sequence[int] = DEFAULT_CAPACITIES,
        capacity_weights: Sequence[float] = DEFAULT_CAPACITY_WEIGHTS,
        event_start: float = 0.0,
        event_duration: float = 3600.0,
        ramp: float = 60.0,
        mid_departure_fraction: float = 0.15,
    ) -> None:
        names = list(regions) if regions is not None else list(REGIONS)
        unknown = [name for name in names if name not in REGIONS]
        if unknown:
            raise ValueError(f"unknown regions: {unknown}")
        if len(capacities) != len(capacity_weights) or not capacities:
            raise ValueError("capacities and weights must be parallel and non-empty")
        # Imported lazily: repro.workload is pulled in by the metrics
        # package during interpreter start-up, before repro.p2p (and
        # the crypto stack underneath it) finishes initializing.
        from repro.p2p.churn import FlashCrowdChurn

        self._rng = rng
        self.regions = names
        self._region_weights = [REGIONS[name].population_weight for name in names]
        self._capacities = list(capacities)
        self._capacity_weights = list(capacity_weights)
        self.churn = FlashCrowdChurn(
            rng,
            audience=audience,
            event_start=event_start,
            event_duration=event_duration,
            ramp=ramp,
            mid_departure_fraction=mid_departure_fraction,
        )
        self._viewers: Optional[List[ViewerSpec]] = None
        self._events: Optional[list] = None

    def _materialize(self) -> None:
        if self._viewers is not None:
            return
        events = self.churn.generate()
        joins = {e.peer_index: e.time for e in events if e.kind == "join"}
        leaves = {e.peer_index: e.time for e in events if e.kind == "leave"}
        viewers = []
        for index in sorted(joins):
            region = self._rng.choices(self.regions, weights=self._region_weights)[0]
            capacity = self._rng.choices(
                self._capacities, weights=self._capacity_weights
            )[0]
            viewers.append(
                ViewerSpec(
                    index=index,
                    region=region,
                    capacity=capacity,
                    join_time=joins[index],
                    leave_time=leaves[index],
                )
            )
        self._viewers = viewers
        self._events = events

    def viewers(self) -> List[ViewerSpec]:
        """All viewer specs, ordered by index (deterministic)."""
        self._materialize()
        assert self._viewers is not None
        return list(self._viewers)

    def events(self) -> List[Tuple[object, ViewerSpec]]:
        """Time-ordered :class:`~repro.p2p.churn.ChurnEvent` items
        paired with their viewer specs."""
        self._materialize()
        assert self._events is not None and self._viewers is not None
        by_index = {spec.index: spec for spec in self._viewers}
        return [(event, by_index[event.peer_index]) for event in self._events]

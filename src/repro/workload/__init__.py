"""Workload generation: who watches what, when.

The paper's evaluation rests on one week of production traffic with a
strong diurnal shape (peak 18:00--24:00) and flash crowds at event
starts.  This package synthesizes equivalent traffic:

* :mod:`repro.workload.diurnal` -- the hour-of-day rate curve;
* :mod:`repro.workload.arrivals` -- non-homogeneous Poisson arrival
  sampling (thinning) and flash-crowd injection;
* :mod:`repro.workload.flashcrowd` -- the flash-crowd viewer
  population (regions by population weight, heterogeneous upload
  capacities) driving the overlay locality storm;
* :mod:`repro.workload.zapping` -- per-session behaviour: Zipf channel
  popularity, channel-switching (zapping) dynamics, session lengths;
* :mod:`repro.workload.traces` -- week-long per-user request traces
  and the opt-in feedback-log sampler mirroring the paper's data
  collection methodology (Section VI).
"""

from repro.workload.diurnal import DiurnalProfile
from repro.workload.arrivals import NonHomogeneousPoisson, FlashCrowd
from repro.workload.flashcrowd import FlashCrowdWorkload, ViewerSpec
from repro.workload.zapping import ZipfChannelPopularity, ZappingModel
from repro.workload.traces import RequestEvent, WeekTraceGenerator, FeedbackLogSampler

__all__ = [
    "DiurnalProfile",
    "NonHomogeneousPoisson",
    "FlashCrowd",
    "FlashCrowdWorkload",
    "ViewerSpec",
    "ZipfChannelPopularity",
    "ZappingModel",
    "RequestEvent",
    "WeekTraceGenerator",
    "FeedbackLogSampler",
]

"""Scheduled live events layered onto the weekly workload.

The paper's premise is that live events produce "highly correlated
service request arrivals and departures" on top of the diurnal
baseline.  This module adds that structure to the synthetic week: an
:class:`EventSchedule` of prime-time events, each contributing a flash
crowd of sessions that arrive within minutes of the event start, stay
for the event, and leave at its end.

The week-long experiment can mix this into its trace; the paper's
flat-latency result must then survive the spikes -- a strictly harder
version of Fig. 5 than the diurnal-only baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.workload.traces import (
    OP_JOIN,
    OP_LOGIN,
    OP_RENEW,
    OP_SWITCH,
    RequestEvent,
    WeekTrace,
)


@dataclass(frozen=True)
class LiveEvent:
    """One scheduled live broadcast with a dedicated audience."""

    name: str
    channel: str
    start: float
    end: float
    audience: int
    crowd_window: float = 180.0

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"event {self.name}: end before start")
        if self.audience < 0:
            raise ValueError("audience must be non-negative")


def prime_time_schedule(
    rng: random.Random,
    n_events: int,
    audience_per_event: int,
    horizon: float = 7 * 86400.0,
    channel_prefix: str = "event-ch",
) -> List[LiveEvent]:
    """Spread events over the week's prime-time slots (20:15 local).

    One event per evening until ``n_events`` are placed; events get
    90-150 minutes of air time -- football-match shaped.
    """
    events: List[LiveEvent] = []
    day = 0
    while len(events) < n_events and day * 86400.0 < horizon:
        start = day * 86400.0 + 20.25 * 3600.0
        duration = rng.uniform(90.0, 150.0) * 60.0
        if start + duration < horizon:
            events.append(
                LiveEvent(
                    name=f"event-{len(events)}",
                    channel=f"{channel_prefix}{len(events) % 4}",
                    start=start,
                    end=start + duration,
                    audience=audience_per_event,
                )
            )
        day += 1
    return events


class EventWorkload:
    """Generates the protocol traffic of one event's flash crowd.

    Each audience member: one LOGIN + SWITCH + JOIN clustered in the
    crowd window after the start (a fraction arrive early), renewals
    through the event, and departure at the end.  Viewers are assumed
    *new* sessions (user indices offset to avoid colliding with the
    baseline trace's).
    """

    def __init__(self, rng: random.Random, channel_ticket_lifetime: float = 900.0) -> None:
        self._rng = rng
        self.channel_ticket_lifetime = channel_ticket_lifetime

    def generate(
        self, event: LiveEvent, user_index_base: int, session_id_base: int
    ) -> "tuple[List[RequestEvent], List[tuple]]":
        """(events, session intervals) for one live event."""
        records: List[RequestEvent] = []
        sessions = []
        for offset in range(event.audience):
            if self._rng.random() < 0.25:
                arrival = event.start - self._rng.uniform(0.0, 600.0)
            else:
                arrival = event.start + self._rng.expovariate(3.0 / event.crowd_window)
            arrival = max(0.0, arrival)
            departure = event.end + self._rng.gauss(0.0, 120.0)
            departure = max(arrival + 60.0, departure)
            user_index = user_index_base + offset
            session_id = session_id_base + offset
            records.append(RequestEvent(arrival, OP_LOGIN, user_index, session_id))
            records.append(
                RequestEvent(arrival, OP_SWITCH, user_index, session_id, event.channel)
            )
            records.append(
                RequestEvent(arrival, OP_JOIN, user_index, session_id, event.channel)
            )
            renew = arrival + self.channel_ticket_lifetime * 0.95
            while renew < departure:
                records.append(
                    RequestEvent(renew, OP_RENEW, user_index, session_id, event.channel)
                )
                renew += self.channel_ticket_lifetime * 0.95
            sessions.append((arrival, departure))
        return records, sessions


def overlay_events_on_trace(
    trace: WeekTrace,
    events: List[LiveEvent],
    rng: random.Random,
    channel_ticket_lifetime: float = 900.0,
) -> WeekTrace:
    """Merge event flash crowds into a baseline week trace.

    Returns a new finalized :class:`WeekTrace`; the baseline is not
    mutated.  Event viewers get fresh user/session indices above the
    baseline's.
    """
    workload = EventWorkload(rng, channel_ticket_lifetime)
    merged_events = list(trace.events)
    merged_sessions = list(trace.sessions)
    next_user = max((e.user_index for e in trace.events), default=-1) + 1
    next_session = len(trace.sessions)
    for event in events:
        records, sessions = workload.generate(event, next_user, next_session)
        merged_events.extend(records)
        merged_sessions.extend(sessions)
        next_user += event.audience
        next_session += event.audience
    return WeekTrace(events=merged_events, sessions=merged_sessions).finalize()

"""Viewer behaviour: channel popularity and zapping dynamics.

Channel popularity in live TV follows a Zipf-like law (a few channels
carry most viewers); channel-switching alternates between rapid
"zapping" bursts (browsing) and long dwell periods (watching a
program).  Every switch is a SWITCH1+SWITCH2 exchange plus a JOIN, so
this model drives the request mix of the week-long experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence


class ZipfChannelPopularity:
    """Zipf(s) sampler over a channel lineup.

    ``P(rank k) ∝ 1 / k^s``; ``s`` near 1 matches measured IPTV channel
    popularity.  Ranks map to channel ids in the given order.
    """

    def __init__(self, channels: Sequence[str], s: float, rng: random.Random) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        if s < 0:
            raise ValueError("Zipf exponent must be non-negative")
        self.channels = list(channels)
        self.s = s
        self._rng = rng
        weights = [1.0 / (rank ** s) for rank in range(1, len(self.channels) + 1)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)

    def sample(self) -> str:
        """Draw one channel by popularity."""
        roll = self._rng.random()
        for channel, cum in zip(self.channels, self._cumulative):
            if roll <= cum:
                return channel
        return self.channels[-1]

    def probability(self, channel: str) -> float:
        """The stationary probability of one channel."""
        index = self.channels.index(channel)
        prev = self._cumulative[index - 1] if index > 0 else 0.0
        return self._cumulative[index] - prev


@dataclass(frozen=True)
class Dwell:
    """One stretch of watching a single channel."""

    channel: str
    duration: float


class ZappingModel:
    """Alternating browse/watch channel-switching behaviour.

    With probability ``browse_prob`` a dwell is a short zap (lognormal
    around ``browse_mean`` seconds); otherwise it is a long watch
    (exponential around ``watch_mean``).  Consecutive dwells avoid
    repeating the same channel, like a viewer flipping away.
    """

    def __init__(
        self,
        popularity: ZipfChannelPopularity,
        rng: random.Random,
        browse_prob: float = 0.55,
        browse_mean: float = 12.0,
        watch_mean: float = 1500.0,
    ) -> None:
        if not 0 <= browse_prob <= 1:
            raise ValueError("browse_prob must be a probability")
        self._popularity = popularity
        self._rng = rng
        self.browse_prob = browse_prob
        self.browse_mean = browse_mean
        self.watch_mean = watch_mean

    def _next_channel(self, current: Optional[str]) -> str:
        for _ in range(10):
            candidate = self._popularity.sample()
            if candidate != current:
                return candidate
        return self._popularity.sample()

    def session(self, session_length: float) -> List[Dwell]:
        """Generate the dwell sequence for one viewing session.

        The final dwell is truncated at the session boundary.  Every
        dwell after the first represents one channel-switch protocol
        exchange.
        """
        if session_length <= 0:
            return []
        dwells: List[Dwell] = []
        elapsed = 0.0
        current: Optional[str] = None
        while elapsed < session_length:
            channel = self._next_channel(current)
            if self._rng.random() < self.browse_prob:
                duration = self._rng.lognormvariate(
                    _lognormal_mu(self.browse_mean, 0.6), 0.6
                )
            else:
                duration = self._rng.expovariate(1.0 / self.watch_mean)
            duration = min(duration, session_length - elapsed)
            dwells.append(Dwell(channel=channel, duration=duration))
            elapsed += duration
            current = channel
        return dwells

    def switches_per_session(self, session_length: float) -> int:
        """Number of channel switches (dwell count minus one, min 0)."""
        return max(0, len(self.session(session_length)) - 1)


def _lognormal_mu(mean: float, sigma: float) -> float:
    """The lognormal mu giving the requested mean for a given sigma."""
    import math

    return math.log(mean) - sigma * sigma / 2.0

"""Arrival-process sampling: non-homogeneous Poisson and flash crowds.

Login and channel-switch requests arrive as a Poisson process whose
rate follows the diurnal curve; event starts inject flash crowds on
top.  Sampling uses Lewis--Shedler thinning: draw from a homogeneous
process at the rate ceiling, keep each point with probability
``rate(t) / ceiling``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Sequence

RateFunction = Callable[[float], float]


class NonHomogeneousPoisson:
    """Thinning sampler for a time-varying Poisson process."""

    def __init__(self, rate: RateFunction, rate_ceiling: float, rng: random.Random) -> None:
        if rate_ceiling <= 0:
            raise ValueError("rate ceiling must be positive")
        self._rate = rate
        self._ceiling = rate_ceiling
        self._rng = rng

    def sample(self, start: float, end: float) -> List[float]:
        """Arrival times in [start, end), sorted ascending."""
        if end <= start:
            return []
        times: List[float] = []
        t = start
        while True:
            t += self._rng.expovariate(self._ceiling)
            if t >= end:
                break
            instantaneous = self._rate(t)
            if instantaneous > self._ceiling * (1.0 + 1e-9):
                raise ValueError(
                    f"rate {instantaneous} exceeds ceiling {self._ceiling} at t={t}"
                )
            if self._rng.random() < instantaneous / self._ceiling:
                times.append(t)
        return times


@dataclass(frozen=True)
class FlashCrowd:
    """A burst of arrivals at an event start.

    ``size`` arrivals land within roughly ``window`` seconds after
    ``start``, front-loaded (exponential decay): the paper's "highly
    correlated service request arrivals at the start of a live event".
    """

    start: float
    size: int
    window: float = 120.0

    def sample(self, rng: random.Random) -> List[float]:
        """Arrival times of the crowd, sorted ascending."""
        times = [
            self.start + rng.expovariate(3.0 / self.window) for _ in range(self.size)
        ]
        times.sort()
        return times


def merge_arrivals(*streams: Sequence[float]) -> List[float]:
    """Merge multiple sorted arrival streams into one sorted list."""
    merged: List[float] = []
    for stream in streams:
        merged.extend(stream)
    merged.sort()
    return merged


def burstiness_index(arrivals: Sequence[float], bin_width: float) -> float:
    """Peak-to-mean ratio of per-bin arrival counts.

    A Poisson stream scores near 1 + O(1/sqrt(mean)); a flash crowd
    scores far higher.  Experiments use this to demonstrate that the
    generated workload actually *is* bursty in the way the paper's
    premise requires.
    """
    if not arrivals:
        return 0.0
    start, end = min(arrivals), max(arrivals)
    if end == start:
        return float(len(arrivals))
    n_bins = max(1, int((end - start) / bin_width))
    counts = [0] * n_bins
    for t in arrivals:
        index = min(n_bins - 1, int((t - start) / bin_width))
        counts[index] += 1
    mean = sum(counts) / len(counts)
    return max(counts) / mean if mean > 0 else 0.0

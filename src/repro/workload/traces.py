"""Week-long request traces and the feedback-log sampling methodology.

The paper measures protocol latencies from opt-in "user feedback" logs
collected over one week (June 23--29, 2008; 60,669 logs).  We generate
the equivalent synthetic object: every DRM protocol operation every
client would perform over a simulated week, given the diurnal session
arrival process and the zapping behaviour model.  A
:class:`FeedbackLogSampler` then mimics the opt-in collection: only a
random subset of sessions "submit feedback", and analyses can run on
the sample exactly as the paper's did (their earlier work validated
the sample's representativeness; our experiments re-verify it by
comparing sample statistics against the full population).

Operations per session:

* one LOGIN at session start (plus re-LOGINs each User Ticket
  lifetime, since renewal repeats the login protocol, Section IV-D);
* a SWITCH + JOIN at session start and at every channel change;
* a RENEW (Channel Ticket renewal: the SWITCH rounds with the renewal
  bit) every Channel Ticket lifetime within a long dwell, each
  followed by presenting the ticket to the parent (no new JOIN).
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.workload.diurnal import DiurnalProfile
from repro.workload.zapping import ZappingModel, ZipfChannelPopularity

WEEK_SECONDS = 7 * 86400.0

OP_LOGIN = "LOGIN"
OP_SWITCH = "SWITCH"
OP_RENEW = "RENEW"
OP_JOIN = "JOIN"


@dataclass(frozen=True)
class RequestEvent:
    """One DRM protocol operation performed by one client."""

    time: float
    op: str
    user_index: int
    session_id: int
    channel: str = ""


@dataclass
class WeekTrace:
    """The full synthetic week: events plus session intervals."""

    events: List[RequestEvent]
    sessions: List[Tuple[float, float]]  # (start, end) per session id
    _starts: List[float] = field(default_factory=list, repr=False)
    _ends: List[float] = field(default_factory=list, repr=False)

    def finalize(self) -> "WeekTrace":
        """Sort events and build the concurrency index."""
        self.events.sort(key=lambda e: e.time)
        self._starts = sorted(s for s, _ in self.sessions)
        self._ends = sorted(e for _, e in self.sessions)
        return self

    def concurrent_at(self, time: float) -> int:
        """Sessions in progress at ``time`` (started and not yet ended)."""
        started = bisect.bisect_right(self._starts, time)
        ended = bisect.bisect_right(self._ends, time)
        return started - ended

    def concurrency_series(self, step: float = 3600.0) -> List[Tuple[float, int]]:
        """(time, concurrent sessions) sampled every ``step`` seconds."""
        horizon = max((e for e in self._ends), default=0.0)
        series = []
        t = 0.0
        while t <= horizon:
            series.append((t, self.concurrent_at(t)))
            t += step
        return series

    def events_of(self, op: str) -> List[RequestEvent]:
        """All events of one operation type, time-ordered."""
        return [e for e in self.events if e.op == op]

    def count_of(self, op: str) -> int:
        """Number of events of one operation type."""
        return sum(1 for e in self.events if e.op == op)


class WeekTraceGenerator:
    """Generates a week of DRM protocol traffic.

    Parameters
    ----------
    peak_concurrent:
        Target peak concurrent sessions (the paper's deployment peaked
        around 25-30k in the measured week; scale down for fast runs).
    n_channels:
        Channel lineup size (the production network carried 200+).
    mean_session:
        Mean session length in seconds.
    user_ticket_lifetime / channel_ticket_lifetime:
        Drive re-login and renewal cadence.
    """

    def __init__(
        self,
        rng: random.Random,
        peak_concurrent: int = 2000,
        n_channels: int = 60,
        zipf_s: float = 1.0,
        horizon: float = WEEK_SECONDS,
        mean_session: float = 1800.0,
        user_ticket_lifetime: float = 1800.0,
        channel_ticket_lifetime: float = 900.0,
        profile: Optional[DiurnalProfile] = None,
    ) -> None:
        self._rng = rng
        self.peak_concurrent = peak_concurrent
        self.horizon = horizon
        self.mean_session = mean_session
        self.user_ticket_lifetime = user_ticket_lifetime
        self.channel_ticket_lifetime = channel_ticket_lifetime
        self.profile = profile or DiurnalProfile()
        channels = [f"ch{i:03d}" for i in range(n_channels)]
        self._popularity = ZipfChannelPopularity(channels, zipf_s, rng)
        self._zapping = ZappingModel(self._popularity, rng)

    def session_arrival_rate(self, time: float) -> float:
        """Session arrivals/second at ``time`` (Little's law inversion).

        Target concurrency N(t) with mean session length S implies an
        arrival rate of N(t)/S.
        """
        scale = self.peak_concurrent / self.profile.peak_multiplier()
        return (self.profile.multiplier(time) * scale) / self.mean_session

    def generate(self) -> WeekTrace:
        """Produce the full week trace."""
        ceiling = self.peak_concurrent / self.mean_session * 1.05
        events: List[RequestEvent] = []
        sessions: List[Tuple[float, float]] = []
        session_id = 0
        t = 0.0
        while True:
            t += self._rng.expovariate(ceiling)
            if t >= self.horizon:
                break
            if self._rng.random() >= self.session_arrival_rate(t) / ceiling:
                continue
            length = self._rng.expovariate(1.0 / self.mean_session)
            length = max(5.0, min(length, self.horizon - t))
            user_index = session_id  # one synthetic user per session
            events.extend(self._session_events(t, length, user_index, session_id))
            sessions.append((t, t + length))
            session_id += 1
        return WeekTrace(events=events, sessions=sessions).finalize()

    def _session_events(
        self, start: float, length: float, user_index: int, session_id: int
    ) -> List[RequestEvent]:
        events: List[RequestEvent] = [
            RequestEvent(time=start, op=OP_LOGIN, user_index=user_index, session_id=session_id)
        ]
        # Re-logins: the client renews its User Ticket by repeating the
        # login protocol before expiry.
        relogin = start + self.user_ticket_lifetime * 0.95
        while relogin < start + length:
            events.append(
                RequestEvent(time=relogin, op=OP_LOGIN, user_index=user_index, session_id=session_id)
            )
            relogin += self.user_ticket_lifetime * 0.95
        # Channel dwells: a switch+join at each dwell start, renewals
        # inside long dwells.
        elapsed = 0.0
        for dwell in self._zapping.session(length):
            dwell_start = start + elapsed
            events.append(
                RequestEvent(
                    time=dwell_start,
                    op=OP_SWITCH,
                    user_index=user_index,
                    session_id=session_id,
                    channel=dwell.channel,
                )
            )
            events.append(
                RequestEvent(
                    time=dwell_start,
                    op=OP_JOIN,
                    user_index=user_index,
                    session_id=session_id,
                    channel=dwell.channel,
                )
            )
            renew = dwell_start + self.channel_ticket_lifetime * 0.95
            while renew < dwell_start + dwell.duration:
                events.append(
                    RequestEvent(
                        time=renew,
                        op=OP_RENEW,
                        user_index=user_index,
                        session_id=session_id,
                        channel=dwell.channel,
                    )
                )
                renew += self.channel_ticket_lifetime * 0.95
            elapsed += dwell.duration
        return events


class FeedbackLogSampler:
    """The paper's opt-in data collection, modelled.

    Each session independently "submits feedback" with probability
    ``submit_prob``; a submitted feedback contains *all* of that
    client's session events (submissions "include logs from all
    channel watching sessions at the client prior to the one with
    error ... these feedbacks also include sessions without errors").
    """

    def __init__(self, rng: random.Random, submit_prob: float = 0.05) -> None:
        if not 0 < submit_prob <= 1:
            raise ValueError("submit probability must be in (0, 1]")
        self._rng = rng
        self.submit_prob = submit_prob

    def sample(self, trace: WeekTrace) -> List[RequestEvent]:
        """Events belonging to sampled sessions, time-ordered."""
        submitted = {
            sid
            for sid in range(len(trace.sessions))
            if self._rng.random() < self.submit_prob
        }
        return [e for e in trace.events if e.session_id in submitted]

    def sampled_session_count(self, trace: WeekTrace) -> int:
        """Expected number of feedback logs for a trace (for reports)."""
        return int(round(len(trace.sessions) * self.submit_prob))

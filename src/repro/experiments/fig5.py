"""Fig. 5: median protocol latency vs. total concurrent users.

The paper plots, per protocol, the per-hour median latency of each
round over one week against the concurrent-user curve, and reports the
Pearson correlation between the two: "[it] ranges from -0.03 to 0.08
for login and channel switching protocols, and is 0.13 for join
protocol.  Although join protocol overhead exhibits slightly higher
dependence on total system usage, its correlation can still be
considered weak."

This module extracts exactly those series from a
:class:`~repro.experiments.weeklong.WeeklongResult` and renders the
three sub-figures' data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.weeklong import WeeklongResult
from repro.metrics.reporting import format_table, sparkline

#: Sub-figure -> rounds, matching Fig. 5(a), (b), (c).
FIG5_PANELS: Dict[str, Tuple[str, ...]] = {
    "a-login": ("LOGIN1", "LOGIN2"),
    "b-switch": ("SWITCH1", "SWITCH2"),
    "c-join": ("JOIN",),
}


@dataclass
class Fig5Series:
    """One round's hourly-median series plus the load series."""

    round_name: str
    hours: List[float]  # hour offsets from trace start
    median_latency: List[float]
    concurrent_users: List[int]
    correlation: float


def extract_series(result: WeeklongResult, round_name: str, min_samples: int = 5) -> Fig5Series:
    """Hourly medians + matching load for one protocol round."""
    hours: List[float] = []
    medians: List[float] = []
    loads: List[int] = []
    for bucket in result.collector.hourly_bins(round_name):
        if bucket.count < min_samples:
            continue
        bin_start = bucket.hour_index * result.collector.bin_seconds
        hours.append(bin_start / 3600.0)
        medians.append(bucket.median_latency)
        loads.append(result.trace.concurrent_at(bin_start + result.collector.bin_seconds / 2))
    return Fig5Series(
        round_name=round_name,
        hours=hours,
        median_latency=medians,
        concurrent_users=loads,
        correlation=result.correlation(round_name, min_samples),
    )


def panel(result: WeeklongResult, panel_key: str, min_samples: int = 5) -> List[Fig5Series]:
    """All series for one sub-figure of Fig. 5."""
    if panel_key not in FIG5_PANELS:
        raise KeyError(f"unknown Fig. 5 panel: {panel_key}")
    return [extract_series(result, name, min_samples) for name in FIG5_PANELS[panel_key]]


def render_panel(result: WeeklongResult, panel_key: str, min_samples: int = 5) -> str:
    """Plain-text rendition of one Fig. 5 sub-figure."""
    series_list = panel(result, panel_key, min_samples)
    lines = [f"Fig. 5({panel_key}): median latency vs concurrent users"]
    load = series_list[0].concurrent_users
    lines.append(f"  load shape     : {sparkline([float(v) for v in load])}")
    rows = []
    for series in series_list:
        lines.append(
            f"  {series.round_name:8s} shape : {sparkline(series.median_latency)}"
        )
        rows.append(
            (
                series.round_name,
                f"{min(series.median_latency):.3f}",
                f"{max(series.median_latency):.3f}",
                f"{series.correlation:+.3f}",
            )
        )
    lines.append(
        format_table(
            ["round", "min hourly median (s)", "max hourly median (s)", "Pearson r vs load"],
            rows,
        )
    )
    return "\n".join(lines)


def paper_comparison(result: WeeklongResult, min_samples: int = 5) -> str:
    """The headline correlation table, paper vs measured."""
    paper = {
        "LOGIN1": "[-0.03, 0.08]",
        "LOGIN2": "[-0.03, 0.08]",
        "SWITCH1": "[-0.03, 0.08]",
        "SWITCH2": "[-0.03, 0.08]",
        "JOIN": "0.13",
    }
    rows = [
        (name, paper[name], f"{result.correlation(name, min_samples):+.3f}")
        for name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN")
    ]
    return format_table(["round", "paper Pearson r", "measured Pearson r"], rows)

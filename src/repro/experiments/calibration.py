"""Calibration: measure the real implementation's per-request costs.

The week-long timing simulation replays millions of requests, far too
many to execute through the full cryptographic stack in pure Python.
Instead, the simulator charges each request a *service time* -- and
this module is where those service times come from: it runs the actual
functional handlers (:meth:`UserManager.login1`/``login2``,
:meth:`ChannelManager.switch1`/``switch2``, :meth:`Peer.handle_join`)
under a wall-clock microbenchmark and reports the measured means.

This closes the substitution loop documented in DESIGN.md: the
simulator's constants are not invented, they are measurements of the
very code this repository ships.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict

from repro.core.challenge import answer_challenge
from repro.core.protocol import JoinRequest, Login1Request, Switch1Request, Switch2Request
from repro.deployment import Deployment
from repro.experiments.common import ServiceTimes


@dataclass
class CalibrationReport:
    """Measured mean seconds per operation, by protocol round."""

    login1: float
    login2: float
    switch1: float
    switch2: float
    join_peer: float
    client_compute: float

    def as_service_times(self) -> ServiceTimes:
        """Feed the measurements into the simulator's configuration."""
        return ServiceTimes(
            login1=self.login1,
            login2=self.login2,
            switch1=self.switch1,
            switch2=self.switch2,
            join_peer=self.join_peer,
            client_compute=self.client_compute,
        )


def _time_op(operation: Callable[[int], None], repetitions: int) -> float:
    """Mean wall-clock seconds of ``operation`` over ``repetitions``."""
    start = time.perf_counter()
    for i in range(repetitions):
        operation(i)
    return (time.perf_counter() - start) / repetitions


def calibrate(repetitions: int = 30, seed: int = 99) -> CalibrationReport:
    """Run the functional protocol handlers under a microbenchmark.

    Builds a small deployment, then times each handler in isolation.
    The client-side compute bucket times one RSA signature (the
    dominant client cost between rounds).
    """
    deployment = Deployment(seed=seed)
    deployment.add_free_channel("cal", regions=["CH"])
    client = deployment.create_client("cal@example.org", "pw", region="CH")
    user_manager = deployment.user_managers["domain-0"]
    channel_manager = deployment.channel_manager_for("cal")

    now = 0.0
    # Warm state: a logged-in, ticketed, joined client.
    client.login(now)
    response = client.switch_channel("cal", now)
    peer = deployment.make_peer(client, "cal", capacity=10_000)
    deployment.overlay("cal").join(peer, response.peers, now)

    # LOGIN1 in isolation (does not mutate client state).
    login1_request = Login1Request(email=client.email, client_public_key=client.public_key)
    t_login1 = _time_op(lambda i: user_manager.login1(login1_request, now), repetitions)

    # SWITCH1 in isolation (fresh challenge each call).  All calls use
    # the warm client's current tickets at a fixed `now`, so validity
    # windows hold for every repetition.
    switch1_request = Switch1Request(user_ticket=client.user_ticket, channel_id="cal")
    t_switch1 = _time_op(
        lambda i: channel_manager.switch1(switch1_request, now), repetitions
    )

    # SWITCH2 in isolation: pre-answer a challenge per iteration.
    def run_switch2(i: int) -> None:
        token = channel_manager.switch1(switch1_request, now).token
        signature = answer_challenge(token, client.private_key)
        channel_manager.switch2(
            Switch2Request(
                user_ticket=client.user_ticket,
                token=token,
                signature=signature,
                channel_id="cal",
            ),
            observed_addr=client.net_addr,
            now=now,
        )

    t_switch2_total = _time_op(run_switch2, max(5, repetitions // 3))
    t_switch2 = max(1e-6, t_switch2_total - t_switch1)

    # JOIN at a peer (admission handler only).
    join_request = JoinRequest(channel_ticket=client.channel_ticket)
    t_join = _time_op(
        lambda i: peer.handle_join(join_request, observed_addr=client.net_addr, now=now),
        repetitions,
    )

    # Full login minus LOGIN1 gives LOGIN2 + client compute.  Timed
    # last because it replaces the client's User Ticket.
    t_full_login = _time_op(lambda i: client.login(now), max(5, repetitions // 3))

    # Client compute: one RSA signature over a nonce-sized payload.
    payload = b"x" * 48
    t_sign = _time_op(lambda i: client.private_key.sign(payload), repetitions)

    t_login2 = max(1e-6, t_full_login - t_login1 - 2 * t_sign)
    return CalibrationReport(
        login1=t_login1,
        login2=t_login2,
        switch1=t_switch1,
        switch2=t_switch2,
        join_peer=t_join,
        client_compute=t_sign,
    )

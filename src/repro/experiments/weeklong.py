"""The simulated measurement week behind Figs. 5 and 6.

Reproduction logic
------------------
The paper measures the latency of five protocol rounds (LOGIN1/2,
SWITCH1/2, JOIN) from one week of production feedback logs and finds
them uncorrelated with concurrent-user count.  The *mechanism* behind
that result is structural:

* manager farms are stateless and provisioned so that per-request
  queueing is negligible against WAN RTT;
* WAN RTT does not depend on the service's own load;
* only JOIN has any load coupling at all -- under higher load more
  candidate peers are at capacity, so a joiner occasionally needs a
  second attempt -- which is why the paper measures r = 0.13 for JOIN
  versus |r| <= 0.08 for the server rounds.

This runner rebuilds exactly that mechanism: a week-long request
trace from the workload generator, manager farms as multi-server FIFO
stations whose service times are calibrated from the real functional
handlers, a WAN latency model, and a capacity-dependent JOIN retry
model.  Latency samples land in a :class:`LatencyCollector` with the
paper's hourly/peak-vs-off-peak analyses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.experiments.common import ServiceTimes, WeeklongConfig
from repro.geo.regions import population_weights
from repro.metrics.collector import LatencyCollector
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, peer_rtt, zattoo_like_rtt_table
from repro.sim.station import ServiceStation
from repro.workload.traces import (
    OP_JOIN,
    OP_LOGIN,
    OP_RENEW,
    OP_SWITCH,
    WeekTrace,
    WeekTraceGenerator,
)

_SITE = "dc-eu"


@dataclass
class WeeklongResult:
    """Everything Figs. 5 and 6 are drawn from."""

    config: WeeklongConfig
    trace: WeekTrace
    collector: LatencyCollector
    um_utilization: float
    cm_utilizations: List[float]

    def correlation(self, round_name: str, min_samples: int = 1) -> float:
        """Pearson r between hourly median latency and concurrent users."""
        return self.collector.correlation_with_load(
            round_name, self.trace.concurrent_at, min_samples_per_bin=min_samples
        )

    def correlations(self, min_samples: int = 1) -> Dict[str, float]:
        """All five rounds' correlations (the paper's headline numbers)."""
        return {
            name: self.correlation(name, min_samples)
            for name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN")
        }


class WeeklongRunner:
    """Runs the simulated measurement week."""

    def __init__(self, config: WeeklongConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._region_names, self._region_weights = population_weights()
        self._region_cache: Dict[int, str] = {}

    def _region_of_user(self, user_index: int) -> str:
        region = self._region_cache.get(user_index)
        if region is None:
            region = self._rng.choices(self._region_names, self._region_weights)[0]
            self._region_cache[user_index] = region
        return region

    def run(self) -> WeeklongResult:
        """Generate the trace, replay it through the farms, collect."""
        config = self.config
        trace = WeekTraceGenerator(
            rng=random.Random(config.seed + 1),
            peak_concurrent=config.peak_concurrent,
            n_channels=config.n_channels,
            horizon=config.horizon,
            mean_session=config.mean_session,
            user_ticket_lifetime=config.user_ticket_lifetime,
            channel_ticket_lifetime=config.channel_ticket_lifetime,
        ).generate()
        if config.live_events > 0 and config.event_audience > 0:
            from repro.workload.events import overlay_events_on_trace, prime_time_schedule

            event_rng = random.Random(config.seed + 5)
            schedule = prime_time_schedule(
                event_rng,
                n_events=config.live_events,
                audience_per_event=config.event_audience,
                horizon=config.horizon,
            )
            trace = overlay_events_on_trace(
                trace, schedule, event_rng,
                channel_ticket_lifetime=config.channel_ticket_lifetime,
            )

        sim = Simulator()
        latency_model = LatencyModel(
            random.Random(config.seed + 2), table=zattoo_like_rtt_table()
        )
        service = config.service
        station_rng = random.Random(config.seed + 3)
        # One logical User Manager farm of um_instances servers; the
        # mean_service_time on the station is only a default -- every
        # submit passes its round-specific sample.
        um_station = ServiceStation(
            sim,
            n_servers=config.um_instances,
            mean_service_time=service.login2,
            rng=station_rng,
            name="user-manager-farm",
        )
        um_station.record_samples = False
        cm_stations = [
            ServiceStation(
                sim,
                n_servers=config.cm_instances_per_partition,
                mean_service_time=service.switch2,
                rng=station_rng,
                name=f"channel-manager-farm-{i}",
            )
            for i in range(config.cm_partitions)
        ]
        for station in cm_stations:
            station.record_samples = False

        collector = LatencyCollector()
        rng = random.Random(config.seed + 4)

        def two_round_exchange(
            event_time: float,
            region: str,
            station: ServiceStation,
            round1: str,
            mean1: float,
            round2: str,
            mean2: float,
        ) -> None:
            """Schedule a two-round client/server exchange.

            Round latency as the client log records it: one full RTT
            plus the server sojourn.  Round 2 starts after the client's
            own compute (signing) completes.
            """

            rtt1 = latency_model.sample_rtt(region, _SITE)

            def arrive_round1(s: Simulator) -> None:
                station.submit(
                    on_complete=lambda s2, sojourn: complete_round1(s2, sojourn),
                    service_time=rng.expovariate(1.0 / mean1),
                )

            def complete_round1(s: Simulator, sojourn: float) -> None:
                receive_time = s.now + rtt1 / 2.0
                collector.record(round1, event_time, receive_time - event_time)
                send2 = receive_time + rng.expovariate(1.0 / service.client_compute)
                rtt2 = latency_model.sample_rtt(region, _SITE)

                def arrive_round2(s2: Simulator) -> None:
                    station.submit(
                        on_complete=lambda s3, sojourn2: collector.record(
                            round2, send2, (s3.now + rtt2 / 2.0) - send2
                        ),
                        service_time=rng.expovariate(1.0 / mean2),
                    )

                s.schedule_at(send2 + rtt2 / 2.0, arrive_round2)

            sim.schedule_at(event_time + rtt1 / 2.0, arrive_round1)

        peak = max(1, config.peak_concurrent)

        def join_latency(event_time: float, region: str) -> float:
            """JOIN: capacity-dependent retries over the peer list.

            Computed analytically (peers are not queued stations); the
            retry probability grows with instantaneous load, giving
            the mild positive correlation the paper measures.
            """
            load_fraction = min(1.0, trace.concurrent_at(event_time) / peak)
            p_reject = min(
                0.9, config.join_reject_base + config.join_reject_slope * load_fraction
            )
            total = 0.0
            for attempt in range(config.peer_list_size):
                same_region = rng.random() < 0.7
                total += peer_rtt(rng, same_region)
                total += rng.expovariate(1.0 / config.service.join_peer)
                if attempt == config.peer_list_size - 1:
                    break
                if rng.random() >= p_reject:
                    break
            # Client decrypts the session key (RSA private op).
            total += rng.expovariate(1.0 / service.client_compute)
            return total

        for event in trace.events:
            region = self._region_of_user(event.user_index)
            if event.op == OP_LOGIN:
                two_round_exchange(
                    event.time, region, um_station,
                    "LOGIN1", service.login1, "LOGIN2", service.login2,
                )
            elif event.op in (OP_SWITCH, OP_RENEW):
                partition = hash(event.channel) % config.cm_partitions
                two_round_exchange(
                    event.time, region, cm_stations[partition],
                    "SWITCH1", service.switch1, "SWITCH2", service.switch2,
                )
            elif event.op == OP_JOIN:
                collector.record("JOIN", event.time, join_latency(event.time, region))

        sim.run()
        return WeeklongResult(
            config=config,
            trace=trace,
            collector=collector,
            um_utilization=um_station.utilization(config.horizon),
            cm_utilizations=[s.utilization(config.horizon) for s in cm_stations],
        )

"""Shared experiment configuration.

The timing simulation's constants fall into two groups:

* **Service times** -- how long a manager instance or peer spends on
  one request of each round.  Defaults were calibrated by running the
  *actual functional implementation* (see
  :mod:`repro.experiments.calibration`) on the development machine;
  re-run the calibration to adapt them to other hardware.  The paper's
  1U dual-Xeon servers land in the same low-millisecond ballpark.
* **Deployment shape** -- farm sizes matching Section VI: "We use two
  User Managers and four Channel Managers in total to serve two
  partitions."
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class ServiceTimes:
    """Mean per-request service times (seconds) by protocol round.

    The cost structure mirrors the cryptographic work each handler
    performs in :mod:`repro.core`:

    * LOGIN1: UserDB lookup + symmetric blob encryption (cheap);
    * LOGIN2: client-signature verify + ticket signing (two RSA ops);
    * SWITCH1: User Ticket signature verify + token mint;
    * SWITCH2: ticket verify + nonce verify + policy eval + ticket
      signing (the most expensive round);
    * JOIN: ticket verify + session-key RSA encryption at the peer;
    * client_compute: the client's own RSA signing/decryption between
      rounds (counted into end-to-end latency, not server load).
    """

    login1: float = 0.0012
    login2: float = 0.0045
    switch1: float = 0.0018
    switch2: float = 0.0060
    join_peer: float = 0.0040
    client_compute: float = 0.0025

    def scaled(self, factor: float) -> "ServiceTimes":
        """All service times multiplied by ``factor`` (slower hardware)."""
        return ServiceTimes(
            login1=self.login1 * factor,
            login2=self.login2 * factor,
            switch1=self.switch1 * factor,
            switch2=self.switch2 * factor,
            join_peer=self.join_peer * factor,
            client_compute=self.client_compute * factor,
        )


@dataclass(frozen=True)
class WeeklongConfig:
    """Configuration for the simulated measurement week.

    ``peak_concurrent`` scales everything; the paper's measured week
    peaked around 25-30k concurrent users.  Full scale is feasible but
    slow in pure Python; the ``fast()`` preset keeps benchmark runs in
    seconds while preserving every structural property (diurnal shape,
    flash factor, farm utilization, correlation statistics).
    """

    seed: int = 20080623  # the paper's measurement week began 2008-06-23
    peak_concurrent: int = 300
    n_channels: int = 40
    horizon: float = 7 * 86400.0
    mean_session: float = 1800.0
    user_ticket_lifetime: float = 1800.0
    channel_ticket_lifetime: float = 900.0
    um_instances: int = 2
    cm_partitions: int = 2
    cm_instances_per_partition: int = 2
    service: ServiceTimes = field(default_factory=ServiceTimes)
    #: JOIN rejection model: probability a candidate peer is full is
    #: base + slope * (load fraction); rejections force another
    #: attempt, giving JOIN its mild positive load correlation (the
    #: paper measured r = 0.13).
    join_reject_base: float = 0.05
    join_reject_slope: float = 0.04
    peer_list_size: int = 8
    #: Feedback-log sampling probability (the measurement methodology).
    feedback_prob: float = 1.0
    #: Scheduled live events mixed into the week (0 = diurnal only).
    #: Each contributes a prime-time flash crowd of ``event_audience``
    #: extra sessions -- the paper's correlated-arrival premise made
    #: explicit.  The flat-latency result must survive these spikes.
    live_events: int = 0
    event_audience: int = 0

    @classmethod
    def fast(cls) -> "WeeklongConfig":
        """Small-but-structurally-faithful preset for benchmarks."""
        return cls(peak_concurrent=300, n_channels=40)

    @classmethod
    def paper_scale(cls) -> "WeeklongConfig":
        """The production week's magnitude (slow: minutes of runtime)."""
        return cls(peak_concurrent=27000, n_channels=200)

    def with_peak(self, peak_concurrent: int) -> "WeeklongConfig":
        """Copy with a different audience scale."""
        return replace(self, peak_concurrent=peak_concurrent)

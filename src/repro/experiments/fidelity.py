"""Fidelity check: the timing model versus the real functional stack.

The week-long simulation charges each request a calibrated service
time.  This module closes the loop in the other direction: it takes a
(small) generated trace and *executes every operation through the real
implementation* -- real logins with real RSA, real policy evaluation,
real peer admission -- charging each exchange a per-op compute cost
(deterministic by default, measured wall clock in ``measured`` mode)
plus a sampled WAN RTT, exactly as the timing model does.  Comparing
the two latency distributions bounds the substitution error of
DESIGN.md's "production testbed -> calibrated simulation" row.

Scale is deliberately tiny (tens of concurrent users, hours not weeks):
the point is distributional agreement per operation, which does not
need volume.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.deployment import Deployment
from repro.errors import CapacityError, ReproError
from repro.metrics.collector import LatencyCollector
from repro.metrics.stats import median
from repro.sim.costs import FixedCostModel, WallClockCostModel
from repro.sim.network import LatencyModel, peer_rtt, zattoo_like_rtt_table
from repro.workload.traces import (
    OP_JOIN,
    OP_LOGIN,
    OP_RENEW,
    OP_SWITCH,
    WeekTrace,
    WeekTraceGenerator,
)

_SITE = "dc-eu"


@dataclass
class FidelityConfig:
    """Scale knobs for the functional replay."""

    seed: int = 4242
    peak_concurrent: int = 15
    n_channels: int = 6
    horizon: float = 6 * 3600.0  # six hours of trace
    peer_capacity: int = 4
    #: When True, charge each operation its measured wall-clock cost
    #: (the original behaviour -- results vary run-to-run and between
    #: machines).  The default charges a deterministic per-op cost so
    #: replays with the same seed reproduce exactly; the WAN RTT term
    #: dominates either way.
    measured: bool = False


@dataclass
class FidelityResult:
    """Latency samples from the functional replay plus counters."""

    collector: LatencyCollector
    operations_executed: int
    operations_failed: int

    def median_latency(self, round_name: str) -> float:
        return median(self.collector.latencies(round_name))


class _SessionState:
    """Per-session client bookkeeping during the replay."""

    def __init__(self, client) -> None:
        self.client = client
        self.peer = None
        self.channel: Optional[str] = None


class FidelityRunner:
    """Replays a generated trace through the real functional stack."""

    #: Deterministic per-exchange compute costs (seconds) charged when
    #: ``config.measured`` is False.  A two-round exchange runs two RSA
    #: private ops plus handler work; joins add per-hop admission.
    EXCHANGE_COSTS = {
        "login_exchange": 0.008,
        "switch_exchange": 0.006,
        "join_overlay": 0.004,
    }

    def __init__(self, config: FidelityConfig = FidelityConfig()) -> None:
        self.config = config
        self._cost_model = (
            WallClockCostModel()
            if config.measured
            else FixedCostModel(costs=self.EXCHANGE_COSTS)
        )

    def run(self) -> FidelityResult:
        config = self.config
        deployment = Deployment(seed=config.seed)
        channels = [f"ch{i:03d}" for i in range(config.n_channels)]
        for channel in channels:
            deployment.add_free_channel(channel, regions=["CH", "DE"])

        trace = WeekTraceGenerator(
            rng=random.Random(config.seed + 1),
            peak_concurrent=config.peak_concurrent,
            n_channels=config.n_channels,
            horizon=config.horizon,
        ).generate()

        latency_model = LatencyModel(
            random.Random(config.seed + 2), table=zattoo_like_rtt_table()
        )
        rng = random.Random(config.seed + 3)
        collector = LatencyCollector()
        sessions: Dict[int, _SessionState] = {}
        last_event_of: Dict[int, int] = {
            event.session_id: index for index, event in enumerate(trace.events)
        }
        executed = failed = 0

        def timed(op: str, round1: str, round2: Optional[str], event_time: float, fn) -> None:
            """Run a functional op; split its cost over its round(s).

            The compute cost of the whole exchange is charged once --
            deterministic per-op by default, measured wall clock in
            ``measured`` mode -- and split evenly across the protocol's
            rounds (we cannot observe per-round server time from
            outside the call); each round then gets an independently
            sampled WAN RTT, matching the timing model's accounting.
            """
            nonlocal executed, failed
            start = time.perf_counter()
            try:
                fn()
            except ReproError:
                failed += 1
                return
            cost = self._cost_model.charge(op, time.perf_counter() - start)
            executed += 1
            rounds = [round1] if round2 is None else [round1, round2]
            for name in rounds:
                rtt = latency_model.sample_rtt("CH", _SITE)
                collector.record(name, event_time, rtt + cost / len(rounds))

        for index, event in enumerate(trace.events):
            state = sessions.get(event.session_id)
            if state is None:
                client = deployment.create_client(
                    f"fid{event.session_id}@example.org", "pw", region="CH"
                )
                state = _SessionState(client)
                sessions[event.session_id] = state

            if event.op == OP_LOGIN:
                timed("login_exchange", "LOGIN1", "LOGIN2", event.time,
                      lambda: state.client.login(now=event.time))
            elif event.op == OP_SWITCH:
                self._leave_current(deployment, state, event.time)
                timed("switch_exchange", "SWITCH1", "SWITCH2", event.time,
                      lambda: state.client.switch_channel(event.channel, now=event.time))
                state.channel = event.channel
            elif event.op == OP_RENEW:
                if state.client.channel_ticket is not None:
                    state.client.login(now=event.time)  # fresh user ticket
                    timed("switch_exchange", "SWITCH1", "SWITCH2", event.time,
                          lambda: state.client.renew_channel_ticket(now=event.time))
            elif event.op == OP_JOIN:
                if state.client.channel_ticket is not None:
                    self._join(deployment, state, event.time, collector, rng)
                    executed += 1

            if last_event_of[event.session_id] == index:
                self._leave_current(deployment, state, event.time)
                sessions.pop(event.session_id, None)

        return FidelityResult(
            collector=collector, operations_executed=executed, operations_failed=failed
        )

    def _join(self, deployment, state, event_time, collector, rng) -> None:
        channel = state.client.channel_ticket.channel_id
        overlay = deployment.overlay(channel)
        peer = deployment.make_peer(
            state.client, channel, capacity=self.config.peer_capacity
        )
        candidates = overlay.sample_peers(channel, state.client.net_addr, 8)
        start = time.perf_counter()
        try:
            _, attempts = overlay.join(peer, candidates, event_time)
        except CapacityError:
            return
        cost = self._cost_model.charge("join_overlay", time.perf_counter() - start)
        total = sum(
            peer_rtt(rng, same_region=rng.random() < 0.7) for _ in range(attempts)
        )
        collector.record("JOIN", event_time, total + cost)
        state.peer = peer

    def _leave_current(self, deployment, state, now: float) -> None:
        if state.peer is None or state.channel is None:
            return
        overlay = deployment.overlays.get(state.channel)
        if overlay is not None and state.peer.peer_id in overlay.peers:
            overlay.remove_peer(state.peer.peer_id, now)
        state.peer = None


def compare_with_timing_model(
    fidelity: FidelityResult, model_medians: Dict[str, float], tolerance: float = 3.0
) -> Dict[str, "tuple[float, float, bool]"]:
    """Per-round (functional median, model median, within tolerance).

    Both stacks are WAN-dominated, so medians should agree within a
    small factor; ``tolerance`` absorbs wall-clock noise from running
    real crypto under a test harness.
    """
    report = {}
    for round_name, model_median in model_medians.items():
        if fidelity.collector.count(round_name) == 0:
            continue
        functional = fidelity.median_latency(round_name)
        ratio = functional / model_median if model_median > 0 else float("inf")
        report[round_name] = (
            functional,
            model_median,
            (1.0 / tolerance) <= ratio <= tolerance,
        )
    return report

"""Fig. 6: latency CDFs, peak hours vs off-peak hours.

"We compare the CDF distribution of latencies experienced during peak
hours (from 6PM to 0AM) and off-peak hours (from 0AM to 6PM).  For all
three protocols, the CDF distribution curves from the two separate
time periods are virtually identical."

We quantify "virtually identical" with the two-sample KS distance and
quantile deltas, and render CDF probe tables shaped like the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.weeklong import WeeklongResult
from repro.metrics.reporting import format_table
from repro.metrics.stats import cdf_at, ks_distance, percentile

FIG6_PANELS: Dict[str, Tuple[str, ...]] = {
    "a-login": ("LOGIN1", "LOGIN2"),
    "b-switch": ("SWITCH1", "SWITCH2"),
    "c-join": ("JOIN",),
}

#: The paper's x-axis runs 0-5 seconds with the y-axis starting at 0.5.
PROBE_QUANTILES = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99)


@dataclass
class Fig6Comparison:
    """Peak vs off-peak distribution comparison for one round."""

    round_name: str
    peak_count: int
    offpeak_count: int
    ks: float
    quantiles: List[Tuple[float, float, float]]  # (q, peak value, off-peak value)

    @property
    def max_quantile_gap(self) -> float:
        """Largest absolute peak/off-peak gap across probed quantiles."""
        return max(abs(p - o) for _, p, o in self.quantiles)


def compare(result: WeeklongResult, round_name: str) -> Fig6Comparison:
    """Build the peak/off-peak comparison for one round."""
    peak, offpeak = result.collector.split_peak_offpeak(round_name)
    quantiles = [
        (q, percentile(peak, q * 100), percentile(offpeak, q * 100))
        for q in PROBE_QUANTILES
    ]
    return Fig6Comparison(
        round_name=round_name,
        peak_count=len(peak),
        offpeak_count=len(offpeak),
        ks=ks_distance(peak, offpeak),
        quantiles=quantiles,
    )


def panel(result: WeeklongResult, panel_key: str) -> List[Fig6Comparison]:
    """All comparisons for one sub-figure of Fig. 6."""
    if panel_key not in FIG6_PANELS:
        raise KeyError(f"unknown Fig. 6 panel: {panel_key}")
    return [compare(result, name) for name in FIG6_PANELS[panel_key]]


def render_panel(result: WeeklongResult, panel_key: str) -> str:
    """Plain-text rendition of one Fig. 6 sub-figure."""
    lines = [f"Fig. 6({panel_key}): latency CDF, peak (18-24h) vs off-peak (0-18h)"]
    for comparison in panel(result, panel_key):
        lines.append(
            f"  {comparison.round_name}: n_peak={comparison.peak_count} "
            f"n_offpeak={comparison.offpeak_count} KS={comparison.ks:.4f}"
        )
        rows = [
            (f"{q:.2f}", f"{p:.3f}", f"{o:.3f}", f"{abs(p - o):.3f}")
            for q, p, o in comparison.quantiles
        ]
        lines.append(
            format_table(
                ["quantile", "peak latency (s)", "off-peak latency (s)", "|gap|"], rows
            )
        )
    return "\n".join(lines)


def fraction_under(result: WeeklongResult, round_name: str, threshold: float) -> Tuple[float, float]:
    """(peak, off-peak) fractions of requests at or under ``threshold``.

    Useful for checking the figure's visual claim at a glance, e.g.
    ~90% of exchanges complete within half a second in both periods.
    """
    peak, offpeak = result.collector.split_peak_offpeak(round_name)
    return cdf_at(peak, threshold), cdf_at(offpeak, threshold)

"""Experiment drivers: one module per figure/table plus ablations.

* :mod:`repro.experiments.common` -- configuration and service-time
  models shared by the timing simulations;
* :mod:`repro.experiments.calibration` -- microbenchmarks of the real
  functional implementation that ground the simulator's service times;
* :mod:`repro.experiments.weeklong` -- the simulated measurement week
  behind Figs. 5 and 6;
* :mod:`repro.experiments.fig5` / :mod:`repro.experiments.fig6` --
  series extraction and correlation statistics in the paper's shape;
* :mod:`repro.experiments.ablations` -- farm scaling, key-distribution
  comparison, traditional-DRM comparison, re-key interval, ticket
  lifetime (DESIGN.md A1-A5).
"""

from repro.experiments.common import ServiceTimes, WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner, WeeklongResult

__all__ = ["ServiceTimes", "WeeklongConfig", "WeeklongRunner", "WeeklongResult"]

"""Ablations A1-A5 (DESIGN.md): the design choices, quantified.

Each function is self-contained and returns plain dataclasses/rows so
the corresponding bench can print a table.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.baselines.central_keyserver import KeyDistributionComparison
from repro.baselines.traditional import TraditionalDrmSimulation
from repro.sim.engine import Simulator
from repro.sim.station import ServiceStation


# ----------------------------------------------------------------------
# A1: stateless farm scaling under a flash crowd
# ----------------------------------------------------------------------


@dataclass
class FarmScalingPoint:
    """One (farm size, flash crowd) measurement."""

    n_servers: int
    arrivals: int
    mean_wait: float
    p95_wait: float
    max_queue: int


def farm_scaling(
    rng: random.Random,
    arrivals: int = 5000,
    window: float = 120.0,
    service_time: float = 0.006,
    farm_sizes: Tuple[int, ...] = (1, 2, 4, 8),
) -> List[FarmScalingPoint]:
    """A flash crowd of login/switch requests against farms of 1..N.

    Because ticket issuance is stateless, adding instances divides the
    load with no coordination cost -- the paper's Section V argument.
    The measured waits should drop superlinearly once the farm leaves
    the saturated regime.
    """
    results: List[FarmScalingPoint] = []
    for n_servers in farm_sizes:
        sim = Simulator()
        station = ServiceStation(
            sim, n_servers=n_servers, mean_service_time=service_time,
            rng=random.Random(rng.randrange(2**62)), name=f"farm-{n_servers}",
        )
        waits: List[float] = []
        times = sorted(rng.expovariate(3.0 / window) for _ in range(arrivals))
        for t in times:
            sim.schedule_at(
                t, lambda s, st=station: st.submit(
                    on_complete=lambda _s, sojourn: waits.append(sojourn)
                )
            )
        sim.run()
        waits.sort()
        results.append(
            FarmScalingPoint(
                n_servers=n_servers,
                arrivals=arrivals,
                mean_wait=sum(waits) / len(waits),
                p95_wait=waits[int(0.95 * (len(waits) - 1))],
                max_queue=station.stats.max_queue_len,
            )
        )
    return results


# ----------------------------------------------------------------------
# A2: P2P key push vs centralized key fetch
# ----------------------------------------------------------------------


@dataclass
class KeyDistPoint:
    """One audience-size comparison row."""

    clients: int
    central_requests_per_rekey: int
    central_p99_wait: float
    push_server_messages: int
    push_depth: int
    push_propagation: float


def keydist_comparison(
    rng: random.Random,
    audiences: Tuple[int, ...] = (100, 1000, 10000, 60000),
    central_servers: int = 4,
) -> List[KeyDistPoint]:
    """Audience sweep: central key server vs the paper's P2P push."""
    comparison = KeyDistributionComparison(rng)
    rows: List[KeyDistPoint] = []
    for clients in audiences:
        storm = comparison.central_fetch(clients, central_servers)
        push = comparison.p2p_push(clients)
        rows.append(
            KeyDistPoint(
                clients=clients,
                central_requests_per_rekey=storm.server_requests,
                central_p99_wait=storm.p99_wait,
                push_server_messages=push.server_messages,
                push_depth=push.tree_depth,
                push_propagation=push.propagation_p99,
            )
        )
    return rows


# ----------------------------------------------------------------------
# A3: traditional playback-time licensing vs event licensing
# ----------------------------------------------------------------------


@dataclass
class TraditionalPoint:
    """Provisioning needed at event start, baseline vs ours."""

    arrivals: int
    traditional_servers_for_sla: int
    ours_servers_for_sla: int


def traditional_comparison(
    rng: random.Random,
    audiences: Tuple[int, ...] = (1000, 5000, 20000),
    window: float = 120.0,
) -> List[TraditionalPoint]:
    """Servers needed to hold a 3-second SLA at event start.

    Traditional DRM: every viewer acquires a playback license in the
    flash-crowd window.  Ours: viewers already hold User Tickets;
    event start only costs a channel switch (amortized across the
    zapping the audience was already doing) -- modelled here as the
    fraction of the audience that actually hits the Channel Manager in
    the window (those not already on the channel: we charge a
    conservative 60%).
    """
    baseline = TraditionalDrmSimulation(rng)
    rows: List[TraditionalPoint] = []
    for arrivals in audiences:
        traditional = baseline.provisioning_needed(arrivals, window)
        ours = baseline.provisioning_needed(int(arrivals * 0.6), window)
        rows.append(
            TraditionalPoint(
                arrivals=arrivals,
                traditional_servers_for_sla=traditional,
                ours_servers_for_sla=ours,
            )
        )
    return rows


# ----------------------------------------------------------------------
# A4: re-key interval vs traffic and exposure
# ----------------------------------------------------------------------


@dataclass
class RekeyPoint:
    """One re-key interval's cost/benefit."""

    epoch: float
    keys_per_hour: float
    link_messages_per_hour_per_peer: float
    exposure_window: float  # how much content one leaked key unlocks


def rekey_tradeoff(epochs: Tuple[float, ...] = (15.0, 60.0, 300.0, 900.0)) -> List[RekeyPoint]:
    """The forward-secrecy dial of Section IV-E.

    Each peer sends exactly one key message per child per epoch, so
    halving the epoch doubles key traffic but halves the window a
    compromised key can decrypt.
    """
    rows: List[RekeyPoint] = []
    for epoch in epochs:
        keys_per_hour = 3600.0 / epoch
        rows.append(
            RekeyPoint(
                epoch=epoch,
                keys_per_hour=keys_per_hour,
                link_messages_per_hour_per_peer=keys_per_hour,  # per child link
                exposure_window=epoch,
            )
        )
    return rows


# ----------------------------------------------------------------------
# A5: ticket lifetime vs renewal load and policy lead time
# ----------------------------------------------------------------------


@dataclass
class TicketLifetimePoint:
    """One ticket-lifetime setting's consequences."""

    lifetime: float
    renewals_per_viewer_hour: float
    blackout_lead_time: float
    stolen_ticket_usefulness: float


def ticket_lifetime_tradeoff(
    lifetimes: Tuple[float, ...] = (300.0, 900.0, 1800.0, 3600.0),
) -> List[TicketLifetimePoint]:
    """The lifetime dial of Sections IV-B/IV-C.

    Shorter tickets mean more renewal traffic but (a) a shorter window
    in which a stolen ticket is useful and (b) a shorter minimum lead
    time for deploying new viewing policies ("the policy must be put
    in place at least one User Ticket lifetime prior to the start of
    the black out period").
    """
    rows: List[TicketLifetimePoint] = []
    for lifetime in lifetimes:
        rows.append(
            TicketLifetimePoint(
                lifetime=lifetime,
                renewals_per_viewer_hour=3600.0 / lifetime,
                blackout_lead_time=lifetime,
                stolen_ticket_usefulness=lifetime,
            )
        )
    return rows

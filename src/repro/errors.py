"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained conditions.

The hierarchy mirrors the paper's architecture: crypto failures,
protocol violations, authorization denials, and simulation misuse are
distinct families because they are handled at different layers.  A
client treats :class:`AuthorizationError` as "the user may not watch
this channel" (a policy outcome), whereas :class:`ProtocolError` means
"the message exchange itself is broken" (a bug or an attack).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A digital signature failed verification.

    Raised when a ticket, message, or key certificate does not verify
    against the expected public key.  Per Section IV-G of the paper,
    signed tickets "cannot be forged or tampered with" -- any tampering
    surfaces as this error.
    """


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted or failed its integrity check."""


class KeyFormatError(CryptoError):
    """A serialized key blob could not be parsed."""


class ProtocolError(ReproError):
    """A DRM protocol message was malformed or out of sequence."""


class ChallengeError(ProtocolError):
    """A nonce challenge-response failed.

    The login and channel-switch protocols both challenge the client
    with a nonce that must be returned encrypted under the client's
    private key (Section IV-F).  A wrong nonce -- e.g. from a replay or
    from an attacker holding a stolen ticket without the matching
    private key -- raises this error.
    """


class AttestationError(ProtocolError):
    """Remote attestation of the client software image failed.

    The login protocol includes a checksum computed over the client
    application with server-supplied parameters (Section IV-F1); a
    mismatch means the client binary was modified.
    """


class AuthorizationError(ReproError):
    """Access was denied by policy evaluation or ticket checks."""


class TicketExpiredError(AuthorizationError):
    """A User Ticket or Channel Ticket is past its expiration time."""


class TicketInvalidError(AuthorizationError):
    """A ticket failed a structural or contextual validity check.

    Covers NetAddr mismatches, wrong channel, bad renewal-bit usage,
    and tickets signed by the wrong manager.
    """


class PolicyRejectError(AuthorizationError):
    """Channel policy evaluation returned REJECT for this user."""


class RenewalRefusedError(AuthorizationError):
    """Channel Ticket renewal was refused.

    Per Section IV-D, renewal is refused when the Channel Manager's
    viewing log shows a more recent entry for the same (UserIN,
    channel) pair from a different network address -- the mechanism
    that enforces one viewing location per account.
    """


class AccountError(ReproError):
    """User account problems: unknown user, bad password, lapsed payment."""


class RedirectionLookupError(AccountError):
    """The Redirection Manager could not map a user to a User Manager.

    Carries the offending email and the domains the manager does know
    about, so an operator reading the message can tell a typo'd email
    from a decommissioned Authentication Domain at a glance.
    """

    def __init__(self, email: str, domains) -> None:
        self.email = email
        self.domains = list(domains)
        known = ", ".join(sorted(self.domains)) if self.domains else "(none)"
        super().__init__(
            f"no User Manager domain serves {email!r}; known domains: {known}"
        )


class ShardingError(ReproError):
    """Misuse of the sharded manager tier (unknown shard, bad plan)."""


class ShardFrozenError(ShardingError):
    """The key's shard range is frozen by an in-flight resharding.

    A freeze is transient by construction -- the coordinator thaws the
    range at cutover (or on rollback) -- so callers treat this like a
    transport condition: defer the operation and replay it, rather
    than reporting failure to the user.
    """

    def __init__(self, key: str) -> None:
        self.key = key
        super().__init__(f"shard range holding {key!r} is frozen for resharding")


class TransportError(ReproError):
    """A message-level transport failure.

    Unlike protocol rejections (bad nonce, policy REJECT, expired
    ticket) -- which are *replies* and must never be retried -- a
    transport failure means the request or response simply did not make
    it.  Retry policies key on this distinction: everything under
    :class:`TransportError` is safe to retry, nothing else is.
    """


class RpcTimeoutError(TransportError):
    """No reply arrived within the caller's timeout."""

    def __init__(self, method: str, dst_address: str, timeout: float) -> None:
        self.method = method
        self.dst_address = dst_address
        self.timeout = timeout
        super().__init__(
            f"rpc {method!r} to {dst_address} timed out after {timeout:g}s"
        )


class RpcDropError(TransportError):
    """The message was dropped before any handler could run.

    Raised on fail-fast connection refusal (the destination process is
    known to be down) and as the synthetic failure when every replica
    of an endpoint pool is circuit-broken.
    """

    def __init__(self, method: str, dst_address: str, reason: str) -> None:
        self.method = method
        self.dst_address = dst_address
        self.reason = reason
        super().__init__(f"rpc {method!r} to {dst_address} dropped: {reason}")


class UnresolvableAddressError(TransportError):
    """A service address had no live binding in the directory.

    A crashed farm's address resolves to nothing until a replacement
    re-registers -- the sync-path analogue of connection refused, and
    therefore a transport (retryable/failover-able) condition rather
    than a protocol one.
    """


class ReplayError(ProtocolError):
    """A key update replayed material older than the replay window.

    Content keys activate monotonically; an update whose activation
    time trails the newest accepted key by more than the receiver's
    replay window cannot be honest re-delivery (duplicates carry the
    *same* activation time) -- it is a replayed old serial trying to
    re-enter the key ring after its dedup marker aged out.
    """


class RateLimitError(AuthorizationError):
    """A manager refused a request because the source exceeded its
    per-address request budget (JOIN/SWITCH flood containment)."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation substrate."""


class CapacityError(ReproError):
    """A peer or server had no capacity to accept a request."""


class OverlayError(ReproError):
    """P2P overlay invariant violation (orphan peers, cycles, etc.)."""

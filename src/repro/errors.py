"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to discriminate finer-grained conditions.

The hierarchy mirrors the paper's architecture: crypto failures,
protocol violations, authorization denials, and simulation misuse are
distinct families because they are handled at different layers.  A
client treats :class:`AuthorizationError` as "the user may not watch
this channel" (a policy outcome), whereas :class:`ProtocolError` means
"the message exchange itself is broken" (a bug or an attack).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class SignatureError(CryptoError):
    """A digital signature failed verification.

    Raised when a ticket, message, or key certificate does not verify
    against the expected public key.  Per Section IV-G of the paper,
    signed tickets "cannot be forged or tampered with" -- any tampering
    surfaces as this error.
    """


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted or failed its integrity check."""


class KeyFormatError(CryptoError):
    """A serialized key blob could not be parsed."""


class ProtocolError(ReproError):
    """A DRM protocol message was malformed or out of sequence."""


class ChallengeError(ProtocolError):
    """A nonce challenge-response failed.

    The login and channel-switch protocols both challenge the client
    with a nonce that must be returned encrypted under the client's
    private key (Section IV-F).  A wrong nonce -- e.g. from a replay or
    from an attacker holding a stolen ticket without the matching
    private key -- raises this error.
    """


class AttestationError(ProtocolError):
    """Remote attestation of the client software image failed.

    The login protocol includes a checksum computed over the client
    application with server-supplied parameters (Section IV-F1); a
    mismatch means the client binary was modified.
    """


class AuthorizationError(ReproError):
    """Access was denied by policy evaluation or ticket checks."""


class TicketExpiredError(AuthorizationError):
    """A User Ticket or Channel Ticket is past its expiration time."""


class TicketInvalidError(AuthorizationError):
    """A ticket failed a structural or contextual validity check.

    Covers NetAddr mismatches, wrong channel, bad renewal-bit usage,
    and tickets signed by the wrong manager.
    """


class PolicyRejectError(AuthorizationError):
    """Channel policy evaluation returned REJECT for this user."""


class RenewalRefusedError(AuthorizationError):
    """Channel Ticket renewal was refused.

    Per Section IV-D, renewal is refused when the Channel Manager's
    viewing log shows a more recent entry for the same (UserIN,
    channel) pair from a different network address -- the mechanism
    that enforces one viewing location per account.
    """


class AccountError(ReproError):
    """User account problems: unknown user, bad password, lapsed payment."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation substrate."""


class CapacityError(ReproError):
    """A peer or server had no capacity to accept a request."""


class OverlayError(ReproError):
    """P2P overlay invariant violation (orphan peers, cycles, etc.)."""

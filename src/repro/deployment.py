"""Full-system deployment builder.

Wires every component of Fig. 1 into a working functional service:
Account Manager, Redirection Manager, one or more User Manager farms
(Authentication Domains), the Channel Policy Manager, one or more
Channel Manager farms (Channel Listing Partitions), per-channel
Channel Servers and overlays, and a client factory.

This is the entry point most examples and integration tests use::

    deployment = Deployment(seed=7)
    deployment.add_free_channel("ch1", regions=["CH", "DE"])
    client = deployment.create_client("alice@example.org", "pw", region="CH")
    client.login(now=0.0)
    response = client.switch_channel("ch1", now=1.0)
    peer = deployment.make_peer(client, "ch1")
    deployment.overlay("ch1").join(peer, response.peers, now=1.5)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.accounts import AccountManager
from repro.core.attributes import (
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    Attribute,
    AttributeSet,
)
from repro.core.channel_manager import ChannelManager
from repro.core.channel_server import ChannelServer
from repro.core.client import Client
from repro.core.directory import ServiceDirectory
from repro.core.policy import Decision, Policy, PolicyCondition
from repro.core.policy_manager import ChannelPolicyManager
from repro.core.redirection import ManagerEndpoint, RedirectionManager
from repro.core.user_manager import UserManager
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.errors import ReproError
from repro.geo.database import GeoDatabase
from repro.metrics.adversary import MisbehaviorCounters
from repro.metrics.dataplane import counters as dataplane_counters
from repro.metrics.hotpath import counters as hotpath_counters
from repro.metrics.registry import MetricsRegistry
from repro.metrics.selection import counters as selection_counters
from repro.resilience.counters import ResilienceCounters
from repro.p2p.overlay import ChannelOverlay, RepairRanker
from repro.p2p.peer import Peer
from repro.p2p.scorecard import JOIN_FLOOD, PeerScorecard
from repro.p2p.selection import RankedPeerListProvider
from repro.trace.span import Tracer

#: The client software version every deployment registers by default.
DEFAULT_CLIENT_VERSION = "4.0.5"
_CLIENT_IMAGE_SIZE = 8192


class Deployment:
    """A complete single-provider service, functionally wired.

    Parameters
    ----------
    seed:
        Master seed; everything (keys, addresses, nonces) derives from
        it deterministically.
    n_domains:
        Number of Authentication Domains (User Manager farms).
    partitions:
        Channel Listing Partition names (one Channel Manager farm per
        partition).
    key_bits:
        RSA modulus size used throughout (512 keeps simulations fast).
    user_ticket_lifetime / channel_ticket_lifetime:
        Ticket lifetimes in seconds.
    """

    def __init__(
        self,
        seed: int = 7,
        n_domains: int = 1,
        partitions: Sequence[str] = ("default",),
        key_bits: int = 512,
        user_ticket_lifetime: float = 1800.0,
        channel_ticket_lifetime: float = 900.0,
        substream_count: int = 1,
        source_capacity: int = 16,
    ) -> None:
        if n_domains < 1 or not partitions:
            raise ReproError("need at least one domain and one partition")
        self.key_bits = key_bits
        self.substream_count = substream_count
        self.source_capacity = source_capacity
        self._drbg = HmacDrbg(seed.to_bytes(8, "big", signed=False), b"deployment")
        self.rng = random.Random(seed)
        self.geo = GeoDatabase()
        self.directory = ServiceDirectory()
        self.accounts = AccountManager()
        self.policy_manager = ChannelPolicyManager()

        # Client image for attestation: one registered release.
        self.client_version = DEFAULT_CLIENT_VERSION
        self.client_image = self._drbg.fork(b"client-image").generate(_CLIENT_IMAGE_SIZE)

        # Channel Policy Manager endpoint (clients learn it from the
        # Redirection Manager).
        cpm_key = generate_keypair(self._drbg.fork(b"cpm-key"), bits=key_bits)
        self._cpm_endpoint = ManagerEndpoint(
            address="cpm://main", public_key=cpm_key.public_key
        )
        self.directory.register("cpm://main", self.policy_manager)
        self.redirection = RedirectionManager(self._cpm_endpoint)

        # Farm credentials (keypair + farm secret) outlive any single
        # process: they are the deployment's key-management layer, and
        # crash recovery hands them back to the rebuilt manager.
        self._credentials: Dict[str, tuple] = {}
        self._account_listeners: Dict[str, object] = {}
        self._attribute_listeners: Dict[str, object] = {}
        self._channel_list_listeners: Dict[str, object] = {}
        self._recovery_counts: Dict[str, int] = {}
        #: Durable stores by component name, populated by
        #: :meth:`enable_durability`.
        self.stores: Dict[str, object] = {}
        self._store_root: Optional[str] = None
        self._store_snapshot_every: Optional[int] = None

        # User Manager farms, one per Authentication Domain.
        self.user_managers: Dict[str, UserManager] = {}
        self.user_ticket_lifetime = user_ticket_lifetime
        self.n_domains = n_domains
        #: UserIN allocation (start, stride) per domain; recovery and
        #: replica spawning must reuse the creation-time parameters.
        self._user_id_params: Dict[str, tuple] = {}
        for index in range(n_domains):
            domain = f"domain-{index}"
            self._user_id_params[domain] = (index + 1, n_domains)
            um_drbg = self._drbg.fork(f"um-{index}".encode())
            um_key = generate_keypair(um_drbg.fork(b"key"), bits=key_bits)
            um_secret = um_drbg.fork(b"secret").generate(32)
            self._credentials[f"um://{domain}"] = (um_key, um_secret)
            manager = UserManager(
                signing_key=um_key,
                farm_secret=um_secret,
                drbg=um_drbg.fork(b"runtime"),
                geo=self.geo,
                ticket_lifetime=user_ticket_lifetime,
                domain=domain,
                user_id_start=index + 1,
                user_id_stride=n_domains,
            )
            manager.register_client_image(self.client_version, self.client_image)
            self._wire_user_manager_listeners(domain, manager)
            address = f"um://{domain}"
            self.directory.register(address, manager)
            self.redirection.register_domain(
                domain, ManagerEndpoint(address=address, public_key=manager.public_key)
            )
            self.user_managers[domain] = manager

        um_keys = [m.public_key for m in self.user_managers.values()]
        cpm_secret = self._drbg.fork(b"cpm-secret").generate(32)
        self._credentials["cpm://main"] = (cpm_key, cpm_secret)
        self.policy_manager.enable_client_access(
            farm_secret=cpm_secret,
            drbg=self._drbg.fork(b"cpm-runtime"),
            user_manager_keys=um_keys,
        )

        # Channel Manager farms, one per partition.
        self.channel_managers: Dict[str, ChannelManager] = {}
        self.channel_ticket_lifetime = channel_ticket_lifetime

        # Peer-list pipeline: SWITCH2 lists are ranked by (same-AS,
        # same-region, spare upload capacity) by default -- ROADMAP
        # item 3.  The provider holds a *reference* to self.overlays, so
        # channels added later are covered automatically; its rng is
        # label-forked from the deployment DRBG so installing it never
        # shifts the self.rng sequence other components draw from.  The
        # uniform sampler remains available as an A/B baseline via
        # :meth:`use_uniform_peer_lists`.
        self.servers: Dict[str, ChannelServer] = {}
        self.overlays: Dict[str, ChannelOverlay] = {}
        ranked_seed = int.from_bytes(
            self._drbg.fork(b"ranked-peer-lists").generate(8), "big"
        )
        self.ranked_provider = RankedPeerListProvider(
            self.overlays,
            self.geo,
            random.Random(ranked_seed),
            same_region_fraction=0.75,
        )
        self._active_peer_list_provider = self.ranked_provider
        # Both repair hooks point at the ranked provider: remove_peer
        # prefers the index-backed selector; the legacy ranker stays
        # wired for external callers that still invoke it directly.
        self._repair_ranker: Optional[RepairRanker] = (
            self.ranked_provider.rank_for_repair
        )
        self._repair_selector = self.ranked_provider.select_repair
        for name in partitions:
            cm_drbg = self._drbg.fork(f"cm-{name}".encode())
            cm_key = generate_keypair(cm_drbg.fork(b"key"), bits=key_bits)
            cm_secret = cm_drbg.fork(b"secret").generate(32)
            self._credentials[f"cm://{name}"] = (cm_key, cm_secret)
            manager = ChannelManager(
                signing_key=cm_key,
                farm_secret=cm_secret,
                drbg=cm_drbg.fork(b"runtime"),
                user_manager_keys=um_keys,
                ticket_lifetime=channel_ticket_lifetime,
                partition=name,
            )
            self._wire_channel_manager_listeners(name, manager)
            manager.set_peer_list_provider(self._active_peer_list_provider)
            self.directory.register(f"cm://{name}", manager)
            self.channel_managers[name] = manager

        self._client_counter = 0
        self._epg = None

        #: Failover replicas by farm, spawned via
        #: :meth:`add_user_manager_replicas` /
        #: :meth:`add_channel_manager_replicas` (primary not included).
        self.um_replicas: Dict[str, List[UserManager]] = {}
        self.cm_replicas: Dict[str, List[ChannelManager]] = {}

        #: Per-deployment metric registry; counter sources register as
        #: subsystems come up (durable stores, the tracer).
        self.metrics = MetricsRegistry()
        self.metrics.register("hotpath", hotpath_counters)
        self.metrics.register("dataplane", dataplane_counters)
        self.metrics.register("selection", selection_counters)
        #: Shared resilience counter block: every retry loop, breaker,
        #: and degraded-mode transition built against this deployment
        #: should aggregate here so ``metrics`` reports them.
        self.resilience = ResilienceCounters()
        self.metrics.register("resilience", self.resilience)
        #: Shared tracer, set by :meth:`enable_tracing`.
        self.tracer: Optional[Tracer] = None
        #: Byzantine detection plane, set by
        #: :meth:`enable_misbehavior_detection`: a shared
        #: :class:`~repro.p2p.scorecard.PeerScorecard` plus its
        #: :class:`~repro.metrics.adversary.MisbehaviorCounters`.
        self.scorecard = None
        self.misbehavior: Optional[MisbehaviorCounters] = None
        #: Sharded manager tier, set by :meth:`enable_sharding`.
        self.sharding = None
        #: Shared process pool, set by :meth:`enable_multicore`.
        self.crypto_pool = None
        self._next_domain_index = n_domains
        self._next_shard_partition_index = 0

    @property
    def epg(self):
        """The provider's Electronic Program Guide (lazily created)."""
        if self._epg is None:
            from repro.core.epg import ElectronicProgramGuide

            self._epg = ElectronicProgramGuide(self.policy_manager)
        return self._epg

    def use_region_aware_sampling(self, same_region_fraction: float = 0.75) -> None:
        """Install the shuffle-based locality sampler on every CM."""
        from repro.p2p.selection import RegionAwarePeerSampler

        sampler = RegionAwarePeerSampler(
            self.overlays,
            self.geo,
            random.Random(self.rng.randrange(2**63)),
            same_region_fraction=same_region_fraction,
        )
        self._install_peer_list_provider(
            sampler, repair_ranker=None, repair_selector=None
        )

    def use_ranked_peer_lists(self, same_region_fraction: float = 0.75) -> None:
        """(Re)install the ranked pipeline, e.g. with a custom privacy cap.

        This is the default wiring; calling it is only needed to change
        ``same_region_fraction`` or to switch back after
        :meth:`use_uniform_peer_lists`.
        """
        ranked_seed = int.from_bytes(
            self._drbg.fork(b"ranked-peer-lists-reinstall").generate(8), "big"
        )
        self.ranked_provider = RankedPeerListProvider(
            self.overlays,
            self.geo,
            random.Random(ranked_seed),
            same_region_fraction=same_region_fraction,
        )
        self._install_peer_list_provider(
            self.ranked_provider,
            repair_ranker=self.ranked_provider.rank_for_repair,
            repair_selector=self.ranked_provider.select_repair,
        )

    def use_uniform_peer_lists(self) -> None:
        """Fall back to uniform sampling (the A/B baseline arm)."""
        self._install_peer_list_provider(
            self._peer_list_provider, repair_ranker=None, repair_selector=None
        )

    def _install_peer_list_provider(
        self, provider, repair_ranker, repair_selector=None
    ) -> None:
        """Point every CM farm (primaries + replicas) and every
        overlay's churn-repair path at one selection policy.  Farms and
        channels created later inherit it via
        ``_active_peer_list_provider`` / ``_repair_selector``."""
        self._active_peer_list_provider = provider
        self._repair_ranker = repair_ranker
        self._repair_selector = repair_selector
        for manager in self.channel_managers.values():
            manager.set_peer_list_provider(provider)
        for replicas in self.cm_replicas.values():
            for replica in replicas:
                replica.set_peer_list_provider(provider)
        for overlay in self.overlays.values():
            overlay.repair_ranker = repair_ranker
            overlay.repair_selector = repair_selector

    def analytics_for(self, channel_id: str):
        """Viewing analytics over the channel's partition log."""
        from repro.core.analytics import ViewingAnalytics

        manager = self.channel_manager_for(channel_id)
        return ViewingAnalytics(manager.viewing_log(), manager.ticket_lifetime)

    # ------------------------------------------------------------------
    # Channel provisioning
    # ------------------------------------------------------------------

    def _peer_list_provider(self, channel_id: str, exclude_addr: str, count: int):
        overlay = self.overlays.get(channel_id)
        if overlay is None:
            return []
        return overlay.sample_peers(channel_id, exclude_addr, count)

    def add_channel(
        self,
        channel_id: str,
        attributes: AttributeSet,
        policies: List[Policy],
        now: float = 0.0,
        partition: Optional[str] = None,
        key_epoch: float = 60.0,
        encrypted: bool = True,
    ) -> None:
        """Provision a channel: metadata, server, overlay, CM routing.

        With sharding enabled, an unpinned channel's partition comes
        from the channel directory (consistent-hash placement over the
        CM shards); otherwise the first partition takes everything.
        """
        if partition is None:
            if self.sharding is not None:
                partition = self.sharding.channel_directory.shard_for(channel_id)
            else:
                partition = next(iter(self.channel_managers))
        if partition not in self.channel_managers:
            raise ReproError(f"unknown partition: {partition}")
        self.policy_manager.add_channel(
            channel_id, now, attributes=attributes, policies=policies, partition=partition
        )
        self.policy_manager.set_channel_manager(channel_id, f"cm://{partition}", now)
        server = ChannelServer(
            channel_id,
            self._drbg.fork(f"server-{channel_id}".encode()),
            key_epoch=key_epoch,
            encrypted=encrypted,
            start_time=now,
        )
        overlay = ChannelOverlay(
            server,
            cm_public_key=self.channel_managers[partition].public_key,
            drbg=self._drbg.fork(f"overlay-{channel_id}".encode()),
            rng=random.Random(self.rng.randrange(2**63)),
            source_address=self.geo.random_address("CH", self.rng),
            source_capacity=self.source_capacity,
            substream_count=self.substream_count,
        )
        overlay.repair_ranker = self._repair_ranker
        overlay.repair_selector = self._repair_selector
        if self.scorecard is not None:
            overlay.scorecard = self.scorecard
        if self.tracer is not None:
            server.tracer = self.tracer
            overlay.source.tracer = self.tracer
        if self.crypto_pool is not None:
            server.crypto_pool = self.crypto_pool
            overlay.source.crypto_pool = self.crypto_pool
        self.servers[channel_id] = server
        self.overlays[channel_id] = overlay

    def add_free_channel(
        self,
        channel_id: str,
        regions: Sequence[str],
        now: float = 0.0,
        partition: Optional[str] = None,
        **kwargs,
    ) -> None:
        """A free-to-view channel viewable from the given regions."""
        attributes = AttributeSet()
        policies: List[Policy] = []
        for region in regions:
            attributes.add(Attribute(name=ATTR_REGION, value=region))
            policies.append(
                Policy.of(
                    priority=50,
                    conditions=[PolicyCondition(name=ATTR_REGION, value=region)],
                    action=Decision.ACCEPT,
                    label=f"free-{region}",
                )
            )
        self.add_channel(channel_id, attributes, policies, now, partition, **kwargs)

    def add_subscription_channel(
        self,
        channel_id: str,
        regions: Sequence[str],
        package_id: str,
        now: float = 0.0,
        partition: Optional[str] = None,
        **kwargs,
    ) -> None:
        """A premium channel: region AND current subscription required."""
        attributes = AttributeSet()
        attributes.add(Attribute(name=ATTR_SUBSCRIPTION, value=package_id))
        policies: List[Policy] = []
        for region in regions:
            attributes.add(Attribute(name=ATTR_REGION, value=region))
            policies.append(
                Policy.of(
                    priority=50,
                    conditions=[
                        PolicyCondition(name=ATTR_REGION, value=region),
                        PolicyCondition(name=ATTR_SUBSCRIPTION, value=package_id),
                    ],
                    action=Decision.ACCEPT,
                    label=f"sub-{package_id}-{region}",
                )
            )
        self.add_channel(channel_id, attributes, policies, now, partition, **kwargs)

    def add_partition(self, name: str) -> ChannelManager:
        """Stand up a new Channel Listing Partition (CM farm) at runtime."""
        if name in self.channel_managers:
            raise ReproError(f"partition exists: {name}")
        um_keys = [m.public_key for m in self.user_managers.values()]
        cm_drbg = self._drbg.fork(f"cm-{name}".encode())
        cm_key = generate_keypair(cm_drbg.fork(b"key"), bits=self.key_bits)
        cm_secret = cm_drbg.fork(b"secret").generate(32)
        self._credentials[f"cm://{name}"] = (cm_key, cm_secret)
        manager = ChannelManager(
            signing_key=cm_key,
            farm_secret=cm_secret,
            drbg=cm_drbg.fork(b"runtime"),
            user_manager_keys=um_keys,
            ticket_lifetime=self.channel_ticket_lifetime,
            partition=name,
        )
        self._wire_channel_manager_listeners(name, manager)
        manager.set_peer_list_provider(self._active_peer_list_provider)
        self.directory.register(f"cm://{name}", manager)
        self.channel_managers[name] = manager
        if self.tracer is not None:
            manager.tracer = self.tracer
        if self.crypto_pool is not None:
            manager.use_signing_pool(self.crypto_pool)
        if self.sharding is not None:
            self.sharding.install_router(manager)
        if self.stores:
            store = self._make_store(f"cm-{name}")
            if store.has_state():
                # A previous process already ran this partition: recover
                # its state instead of snapshotting the fresh farm over it.
                self.crash_channel_manager(name)
                return self.recover_channel_manager(name)
            manager.attach_store(store, snapshot_every=self._store_snapshot_every)
        return manager

    def promote_channel(self, channel_id: str, partition: str, now: float) -> None:
        """Move a (popular) channel onto its own partition (Section V).

        Creates the partition if needed, re-homes the channel, and
        re-points the overlay's ticket-verification key at the new
        farm.  In-flight Channel Tickets from the old farm remain
        valid at existing peers until expiry; *new* joins require a
        ticket from the new farm, which clients obtain transparently
        at their next switch/renewal (the utime bump prompts a Channel
        List refresh).
        """
        if partition not in self.channel_managers:
            self.add_partition(partition)
        manager = self.channel_managers[partition]
        self.policy_manager.move_channel_partition(
            channel_id, partition, f"cm://{partition}", now
        )
        if self.sharding is not None:
            # A promoted channel is pinned: directory overrides outrank
            # the ring and never move during resharding.
            self.sharding.channel_directory.pin(channel_id, partition)
        overlay = self.overlay(channel_id)
        overlay.source.cm_public_key = manager.public_key
        for peer in overlay.peers.values():
            peer.cm_public_key = manager.public_key

    def add_channel_bundle(
        self,
        bundle_package: str,
        channel_regions: Dict[str, Sequence[str]],
        now: float = 0.0,
        partition: Optional[str] = None,
    ) -> None:
        """Provision a subscription *bundle*: one package, many channels.

        Section III: channels "may be made available to the users as
        part of channel bundles or individually, à la carte."  A bundle
        is simply the same Subscription package gating several
        channels; an à-la-carte channel uses its own package id via
        :meth:`add_subscription_channel`.
        """
        for channel_id, regions in channel_regions.items():
            self.add_subscription_channel(
                channel_id, regions=regions, package_id=bundle_package,
                now=now, partition=partition,
            )

    def overlay(self, channel_id: str) -> ChannelOverlay:
        """The overlay carrying a channel."""
        overlay = self.overlays.get(channel_id)
        if overlay is None:
            raise ReproError(f"no overlay for channel {channel_id!r}")
        return overlay

    def server(self, channel_id: str) -> ChannelServer:
        """The Channel Server feeding a channel."""
        server = self.servers.get(channel_id)
        if server is None:
            raise ReproError(f"no server for channel {channel_id!r}")
        return server

    def channel_manager_for(self, channel_id: str) -> ChannelManager:
        """The Channel Manager farm serving a channel's partition."""
        record = self.policy_manager.get_channel(channel_id)
        return self.channel_managers[record.partition]

    # ------------------------------------------------------------------
    # Causal tracing (see repro.trace)
    # ------------------------------------------------------------------

    def enable_tracing(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Attach one shared tracer to every protocol component.

        Components created *after* this call (clients, peers, channels,
        recovered managers) pick the tracer up automatically.  Returns
        the tracer so callers can pull reports from it.
        """
        if tracer is None:
            tracer = Tracer()
        self.tracer = tracer
        self.redirection.tracer = tracer
        for manager in self.user_managers.values():
            manager.tracer = tracer
        for manager in self.channel_managers.values():
            manager.tracer = tracer
        for replicas in self.um_replicas.values():
            for replica in replicas:
                replica.tracer = tracer
        for replicas in self.cm_replicas.values():
            for replica in replicas:
                replica.tracer = tracer
        for server in self.servers.values():
            server.tracer = tracer
        for overlay in self.overlays.values():
            overlay.source.tracer = tracer
            for peer in overlay.peers.values():
                peer.tracer = tracer
        if self.scorecard is not None:
            self.scorecard.tracer = tracer
        self.metrics.register("trace", tracer)
        return tracer

    # ------------------------------------------------------------------
    # Byzantine detection and containment (see repro.p2p.scorecard)
    # ------------------------------------------------------------------

    def enable_misbehavior_detection(
        self,
        half_life: float = 120.0,
        quarantine_threshold: float = 3.0,
        join_rate_limit: Optional[Tuple[int, float]] = None,
    ) -> "PeerScorecard":
        """Turn on the Byzantine detection plane.

        One shared :class:`~repro.p2p.scorecard.PeerScorecard` is
        attached to every overlay and peer (existing and future), its
        counters are registered as the ``adversary`` metrics subsystem,
        and -- when ``join_rate_limit=(limit, window)`` is given --
        every Channel Manager gains a per-address SWITCH rate limiter
        whose refusals feed the scorecard.  Returns the scorecard.
        """
        if self.scorecard is not None:
            return self.scorecard
        self.misbehavior = MisbehaviorCounters()
        self.scorecard = PeerScorecard(
            half_life=half_life,
            quarantine_threshold=quarantine_threshold,
            counters=self.misbehavior,
            tracer=self.tracer,
        )
        self.metrics.register("adversary", self.misbehavior)
        for overlay in self.overlays.values():
            overlay.scorecard = self.scorecard
            for peer in overlay.peers.values():
                peer.scorecard = self.scorecard
                self.scorecard.note_address(peer.peer_id, peer.address)
        if join_rate_limit is not None:
            limit, window = join_rate_limit
            managers = list(self.channel_managers.values())
            for replicas in self.cm_replicas.values():
                managers.extend(replicas)
            for manager in managers:
                manager.set_join_rate_limit(limit, window)
                manager.rate_limit_listener = self._on_rate_limited
        return self.scorecard

    def _on_rate_limited(self, observed_addr: str, now: float) -> None:
        if self.scorecard is not None:
            self.scorecard.report_address(observed_addr, JOIN_FLOOD, now=now)

    def contain_misbehavior(self, now: float) -> Dict[str, List[str]]:
        """One containment sweep: audit depths, evict quarantined peers.

        Returns ``channel_id -> evicted peer ids``.  The chaos rigs
        call this once per key epoch.
        """
        evicted: Dict[str, List[str]] = {}
        if self.scorecard is None:
            return evicted
        for channel_id, overlay in self.overlays.items():
            overlay.audit_depths(now)
            gone = overlay.contain(now)
            if gone:
                evicted[channel_id] = gone
        return evicted

    def enable_multicore(self, workers: Optional[int] = None, pool=None):
        """Put the crypto plane behind a process pool.

        Attaches one shared :class:`~repro.parallel.pool.CryptoPool`
        to every component with offloadable work: channel servers and
        overlay sources (GOP batch sealing), overlay peers (key
        fan-out), and every manager and replica (ticket signing via
        :class:`~repro.parallel.pool.PooledSigningKey`).  Components
        created afterwards pick the pool up automatically, mirroring
        :meth:`enable_tracing`.  Outputs are byte-identical to the
        in-process paths, and worker counter deltas are merged back so
        ``metrics`` stays exact.  ``workers=None`` sizes the pool to
        the machine; on platforms without ``fork`` the pool runs its
        inline fallback and everything still works.  Returns the pool
        (register ``pool.stats`` shows up under ``"multicore"``).
        """
        from repro.parallel.pool import CryptoPool

        if pool is None:
            pool = CryptoPool(workers=workers)
        self.crypto_pool = pool
        for manager in self.user_managers.values():
            manager.use_signing_pool(pool)
        for manager in self.channel_managers.values():
            manager.use_signing_pool(pool)
        for replicas in self.um_replicas.values():
            for replica in replicas:
                replica.use_signing_pool(pool)
        for replicas in self.cm_replicas.values():
            for replica in replicas:
                replica.use_signing_pool(pool)
        for server in self.servers.values():
            server.crypto_pool = pool
        for overlay in self.overlays.values():
            overlay.source.crypto_pool = pool
            for peer in overlay.peers.values():
                peer.crypto_pool = pool
        self.metrics.register("multicore", pool.stats)
        return pool

    # ------------------------------------------------------------------
    # Durability and crash recovery (see repro.store, repro.sim.faults)
    # ------------------------------------------------------------------

    def _wire_user_manager_listeners(self, domain: str, manager: UserManager) -> None:
        """(Re-)subscribe a UM instance to CPM and Account pushes."""
        attribute_listener = manager.receive_channel_attribute_list
        self.policy_manager.add_attribute_list_listener(attribute_listener)
        self._attribute_listeners[domain] = attribute_listener
        account_listener = lambda account, m=manager: m.sync_account(account)
        self.accounts.add_listener(account_listener)
        self._account_listeners[domain] = account_listener

    def _wire_channel_manager_listeners(self, name: str, manager: ChannelManager) -> None:
        """(Re-)subscribe a CM instance to Channel List pushes."""
        listener = manager.receive_channel_list
        self.policy_manager.add_channel_list_listener(listener)
        self._channel_list_listeners[name] = listener

    def _make_store(self, name: str):
        from repro.store import DurableStore, FileBackend, MemoryBackend

        if self._store_root is None:
            backend = MemoryBackend()
        else:
            import os

            backend = FileBackend(os.path.join(self._store_root, name))
        store = DurableStore(backend)
        self.stores[name] = store
        self.metrics.register(f"store.{name}", store.stats)
        return store

    def enable_durability(
        self, root: Optional[str] = None, snapshot_every: Optional[int] = None
    ) -> Dict[str, object]:
        """Attach a durable store to every stateful manager.

        ``root=None`` uses in-memory backends (simulation-grade
        durability: state survives a *process object* crash, which is
        what the fault injector models); a directory path uses
        :class:`~repro.store.FileBackend` subdirectories per manager.
        ``snapshot_every`` bounds WAL growth by auto-compacting after
        that many records.

        If ``root`` already holds state from a previous process, each
        manager is *recovered* from its store instead of snapshotting
        the fresh in-memory state over it -- pointing a restarted
        deployment at its old root never destroys data.  Build the
        deployment with the same ``seed`` so key management re-derives
        the farm credentials the persisted tickets expect.
        """
        self._store_root = root
        self._store_snapshot_every = snapshot_every

        cpm_store = self._make_store("cpm")
        if cpm_store.has_state():
            self._recover_policy_manager(cpm_store)
        else:
            self.policy_manager.attach_store(cpm_store, snapshot_every=snapshot_every)

        for domain in list(self.user_managers):
            store = self._make_store(f"um-{domain}")
            if store.has_state():
                self.crash_user_manager(domain)
                self.recover_user_manager(domain)
            else:
                self.user_managers[domain].attach_store(
                    store, snapshot_every=snapshot_every
                )

        for name in list(self.channel_managers):
            store = self._make_store(f"cm-{name}")
            if store.has_state():
                self.crash_channel_manager(name)
                self.recover_channel_manager(name)
            else:
                self.channel_managers[name].attach_store(
                    store, snapshot_every=snapshot_every
                )

        if self.sharding is not None:
            for name, partition in self.sharding.viewing.partitions().items():
                partition.attach_store(self._make_store(f"viewing-{name}"))
        return self.stores

    def _recover_policy_manager(self, store) -> ChannelPolicyManager:
        """Rebuild the Channel Policy Manager from a pre-existing store.

        The recovered instance takes over the old one's directory
        binding and listener registrations; registering the stashed
        listeners pushes the recovered Channel (Attribute) List to the
        live User/Channel Managers immediately.
        """
        generation = self._recovery_counts.get("cpm://main", 0) + 1
        self._recovery_counts["cpm://main"] = generation
        _cpm_key, cpm_secret = self._credentials["cpm://main"]
        manager = ChannelPolicyManager.recover(
            store, snapshot_every=self._store_snapshot_every
        )
        manager.enable_client_access(
            farm_secret=cpm_secret,
            drbg=HmacDrbg(cpm_secret, f"cpm-recovery-{generation}".encode()),
            user_manager_keys=[m.public_key for m in self.user_managers.values()],
        )
        self.policy_manager = manager
        self.directory.register("cpm://main", manager)
        for listener in self._attribute_listeners.values():
            manager.add_attribute_list_listener(listener)
        for listener in self._channel_list_listeners.values():
            manager.add_channel_list_listener(listener)
        self._epg = None
        return manager

    def crash_channel_manager(self, partition: str) -> ChannelManager:
        """Kill a Channel Manager farm process.

        The manager object is unhooked from every feed and the
        directory -- only its durable store, and the farm credentials
        held by the deployment's key management, survive.  Returns the
        dead instance (tests compare its state against the recovered
        one).
        """
        dead = self.channel_managers.pop(partition, None)
        if dead is None:
            raise ReproError(f"unknown partition: {partition}")
        listener = self._channel_list_listeners.pop(partition, None)
        if listener is not None:
            self.policy_manager.remove_channel_list_listener(listener)
        self.directory.unregister(f"cm://{partition}")
        return dead

    def recover_channel_manager(self, partition: str) -> ChannelManager:
        """Rebuild a crashed Channel Manager from its durable store."""
        store = self.stores.get(f"cm-{partition}")
        if store is None:
            raise ReproError(f"no durable store for partition {partition!r}")
        credentials = self._credentials.get(f"cm://{partition}")
        if credentials is None:
            raise ReproError(f"no credentials for partition {partition!r}")
        signing_key, farm_secret = credentials
        generation = self._recovery_counts.get(f"cm://{partition}", 0) + 1
        self._recovery_counts[f"cm://{partition}"] = generation
        manager = ChannelManager.recover(
            store,
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=HmacDrbg(farm_secret, f"cm-recovery-{generation}".encode()),
            user_manager_keys=[m.public_key for m in self.user_managers.values()],
            ticket_lifetime=self.channel_ticket_lifetime,
            partition=partition,
            snapshot_every=self._store_snapshot_every,
        )
        self.channel_managers[partition] = manager
        self._wire_channel_manager_listeners(partition, manager)
        manager.set_peer_list_provider(self._active_peer_list_provider)
        self.directory.register(f"cm://{partition}", manager)
        if self.tracer is not None:
            manager.tracer = self.tracer
        if self.sharding is not None:
            self.sharding.install_router(manager)
        return manager

    def crash_user_manager(self, domain: str) -> UserManager:
        """Kill a User Manager farm process (see crash_channel_manager)."""
        dead = self.user_managers.pop(domain, None)
        if dead is None:
            raise ReproError(f"unknown domain: {domain}")
        attribute_listener = self._attribute_listeners.pop(domain, None)
        if attribute_listener is not None:
            self.policy_manager.remove_attribute_list_listener(attribute_listener)
        account_listener = self._account_listeners.pop(domain, None)
        if account_listener is not None:
            self.accounts.remove_listener(account_listener)
        self.directory.unregister(f"um://{domain}")
        self.redirection.mark_down(f"um://{domain}")
        return dead

    def recover_user_manager(self, domain: str) -> UserManager:
        """Rebuild a crashed User Manager from its durable store."""
        store = self.stores.get(f"um-{domain}")
        if store is None:
            raise ReproError(f"no durable store for domain {domain!r}")
        credentials = self._credentials.get(f"um://{domain}")
        if credentials is None:
            raise ReproError(f"no credentials for domain {domain!r}")
        signing_key, farm_secret = credentials
        generation = self._recovery_counts.get(f"um://{domain}", 0) + 1
        self._recovery_counts[f"um://{domain}"] = generation
        user_id_start, user_id_stride = self._user_id_params[domain]
        manager = UserManager.recover(
            store,
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=HmacDrbg(farm_secret, f"um-recovery-{generation}".encode()),
            geo=self.geo,
            ticket_lifetime=self.user_ticket_lifetime,
            domain=domain,
            user_id_start=user_id_start,
            user_id_stride=user_id_stride,
            snapshot_every=self._store_snapshot_every,
        )
        self.user_managers[domain] = manager
        self._wire_user_manager_listeners(domain, manager)
        self.directory.register(f"um://{domain}", manager)
        self.redirection.mark_up(f"um://{domain}")
        if self.tracer is not None:
            manager.tracer = self.tracer
        return manager

    # ------------------------------------------------------------------
    # Manager replicas (see repro.resilience)
    # ------------------------------------------------------------------

    def add_user_manager_replicas(self, domain: str, count: int) -> List[UserManager]:
        """Spawn ``count`` extra instances of a User Manager farm.

        Each replica holds the farm's credentials (same signing key and
        secret -- tickets verify against one public key regardless of
        which instance issued them), shares the primary's user database
        by reference, subscribes to the same CPM/Account feeds, and is
        published to the Redirection Manager as a failover target at
        ``um://<domain>!<n>``.
        """
        primary = self.user_managers.get(domain)
        if primary is None:
            raise ReproError(f"unknown domain: {domain}")
        signing_key, farm_secret = self._credentials[f"um://{domain}"]
        user_id_start, user_id_stride = self._user_id_params[domain]
        replicas = self.um_replicas.setdefault(domain, [])
        created: List[UserManager] = []
        store = self.stores.get(f"um-{domain}")
        for _ in range(count):
            n = len(replicas) + 1
            replica = UserManager(
                signing_key=signing_key,
                farm_secret=farm_secret,
                drbg=HmacDrbg(farm_secret, f"um-{domain}-replica-{n}".encode()),
                geo=self.geo,
                ticket_lifetime=self.user_ticket_lifetime,
                domain=domain,
                user_id_start=user_id_start,
                user_id_stride=user_id_stride,
            )
            replica.register_client_image(self.client_version, self.client_image)
            primary.share_state_with(replica)
            self._wire_user_manager_listeners(f"{domain}!{n}", replica)
            address = f"um://{domain}!{n}"
            self.directory.register(address, replica)
            self.redirection.add_replica(
                domain, ManagerEndpoint(address=address, public_key=replica.public_key)
            )
            if store is not None:
                replica.attach_store(store, snapshot_every=self._store_snapshot_every)
            if self.tracer is not None:
                replica.tracer = self.tracer
            replicas.append(replica)
            created.append(replica)
        return created

    def add_channel_manager_replicas(
        self, partition: str, count: int
    ) -> List[ChannelManager]:
        """Spawn ``count`` extra instances of a Channel Manager farm.

        Replicas share the primary's viewing log *by reference* --
        Section V's farm contract, and the load-bearing detail for the
        one-viewing-location rule surviving failover: whichever
        instance handles a renewal consults the same latest-entry
        index.  Published in the directory at ``cm://<partition>!<n>``.
        """
        primary = self.channel_managers.get(partition)
        if primary is None:
            raise ReproError(f"unknown partition: {partition}")
        signing_key, farm_secret = self._credentials[f"cm://{partition}"]
        um_keys = [m.public_key for m in self.user_managers.values()]
        replicas = self.cm_replicas.setdefault(partition, [])
        created: List[ChannelManager] = []
        store = self.stores.get(f"cm-{partition}")
        for _ in range(count):
            n = len(replicas) + 1
            replica = ChannelManager(
                signing_key=signing_key,
                farm_secret=farm_secret,
                drbg=HmacDrbg(farm_secret, f"cm-{partition}-replica-{n}".encode()),
                user_manager_keys=um_keys,
                ticket_lifetime=self.channel_ticket_lifetime,
                partition=partition,
            )
            primary.share_state_with(replica)
            self._wire_channel_manager_listeners(f"{partition}!{n}", replica)
            replica.set_peer_list_provider(self._active_peer_list_provider)
            if self.sharding is not None:
                self.sharding.install_router(replica)
            self.directory.register(f"cm://{partition}!{n}", replica)
            if store is not None:
                replica.attach_store(store, snapshot_every=self._store_snapshot_every)
            if self.tracer is not None:
                replica.tracer = self.tracer
            replicas.append(replica)
            created.append(replica)
        return created

    # ------------------------------------------------------------------
    # Sharded manager tier (see repro.sharding)
    # ------------------------------------------------------------------

    def enable_sharding(self, vnodes: Optional[int] = None):
        """Install the sharded manager tier over the running farms.

        Builds consistent-hash rings over the existing Authentication
        Domains and Channel Listing Partitions, partitions the viewing
        log by user, and installs shard-aware placement into the
        Redirection Manager and every Channel Manager instance.
        Idempotent; returns the :class:`~repro.sharding.ShardingRuntime`.

        Call after :meth:`enable_durability` if both are wanted: the
        viewing partitions attach their stores at sharding time.
        """
        if self.sharding is not None:
            return self.sharding
        from repro.sharding.ring import DEFAULT_VNODES
        from repro.sharding.runtime import ShardingRuntime

        runtime = ShardingRuntime(
            self, vnodes=DEFAULT_VNODES if vnodes is None else vnodes
        )
        self.sharding = runtime
        self.metrics.register("sharding", runtime.counters)
        if self.stores:
            for name, partition in runtime.viewing.partitions().items():
                partition.attach_store(self._make_store(f"viewing-{name}"))
        return runtime

    def add_user_manager_shards(self, count: int = 1) -> List[str]:
        """Grow the UM tier by ``count`` Authentication Domain shards.

        Each new domain is stood up cold (fresh farm, full account
        sync, disjoint UserIN band), then *live-resharded* in: the
        coordinator freezes the moving key range, migrates UserDB rows
        and viewing histories, and cuts the directory over -- roughly
        1/N of users move per added shard, everyone else is untouched.
        Returns the new domain names.
        """
        runtime = self.enable_sharding()
        added: List[str] = []
        for _ in range(count):
            index = self._next_domain_index
            self._next_domain_index += 1
            domain = f"domain-{index}"
            self._spawn_user_manager_shard(domain, index)
            runtime.attach_user_shard(domain)
            if self.stores:
                runtime.viewing.partition(domain).attach_store(
                    self._make_store(f"viewing-{domain}")
                )
            plan = runtime.coordinator.plan_add_user_shard(domain)
            runtime.coordinator.execute(plan)
            added.append(domain)
        return added

    def add_channel_manager_shards(self, count: int = 1) -> List[str]:
        """Grow the CM tier by ``count`` Channel Listing Partition shards.

        Each new partition joins the channel ring through the live
        resharding path: ~1/N of channels re-home onto it (policy
        records and overlay keys flip; *no* viewing state moves, since
        the log is partitioned by user).  Returns the new partition
        names.
        """
        runtime = self.enable_sharding()
        added: List[str] = []
        for _ in range(count):
            index = self._next_shard_partition_index
            self._next_shard_partition_index += 1
            name = f"partition-{index}"
            while name in self.channel_managers:
                index = self._next_shard_partition_index
                self._next_shard_partition_index += 1
                name = f"partition-{index}"
            self.add_partition(name)
            plan = runtime.coordinator.plan_add_channel_shard(name)
            runtime.coordinator.execute(plan)
            added.append(name)
        return added

    def _spawn_user_manager_shard(self, domain: str, index: int) -> UserManager:
        """Stand up one new UM farm for live reshard-in.

        The new domain allocates UserINs from a disjoint high band
        ((index+1) << 32, stride 1): the legacy domains interleave ids
        with the *original* domain count as stride, so a late-added
        shard must not re-use that scheme or its allocations would
        collide with theirs.
        """
        user_id_start = (index + 1) << 32
        self._user_id_params[domain] = (user_id_start, 1)
        um_drbg = self._drbg.fork(f"um-{index}".encode())
        um_key = generate_keypair(um_drbg.fork(b"key"), bits=self.key_bits)
        um_secret = um_drbg.fork(b"secret").generate(32)
        self._credentials[f"um://{domain}"] = (um_key, um_secret)
        manager = UserManager(
            signing_key=um_key,
            farm_secret=um_secret,
            drbg=um_drbg.fork(b"runtime"),
            geo=self.geo,
            ticket_lifetime=self.user_ticket_lifetime,
            domain=domain,
            user_id_start=user_id_start,
            user_id_stride=1,
        )
        manager.register_client_image(self.client_version, self.client_image)
        self._wire_user_manager_listeners(domain, manager)
        address = f"um://{domain}"
        self.directory.register(address, manager)
        self.redirection.register_domain(
            domain, ManagerEndpoint(address=address, public_key=manager.public_key)
        )
        self.user_managers[domain] = manager
        # Every domain replicates the full account base (Section V);
        # listeners only cover future pushes, so backfill the rest.
        for account in self.accounts.all_accounts():
            manager.sync_account(account)
        manager.receive_channel_attribute_list(
            self.policy_manager.channel_attribute_list()
        )
        # Downstream verifiers must accept the new domain's tickets.
        self.policy_manager.add_user_manager_key(manager.public_key)
        for cm in self.channel_managers.values():
            cm.add_user_manager_key(manager.public_key)
        for replicas in self.cm_replicas.values():
            for replica in replicas:
                replica.add_user_manager_key(manager.public_key)
        if self.tracer is not None:
            manager.tracer = self.tracer
        if self.stores:
            store = self._make_store(f"um-{domain}")
            manager.attach_store(store, snapshot_every=self._store_snapshot_every)
        return manager

    def um_farm_addresses(self, domain: str) -> List[str]:
        """Directory addresses of a UM farm: primary first, then replicas."""
        if domain not in self.user_managers:
            raise ReproError(f"unknown domain: {domain}")
        return [f"um://{domain}"] + [
            f"um://{domain}!{n}"
            for n in range(1, len(self.um_replicas.get(domain, ())) + 1)
        ]

    def cm_farm_addresses(self, partition: str) -> List[str]:
        """Directory addresses of a CM farm: primary first, then replicas."""
        if partition not in self.channel_managers:
            raise ReproError(f"unknown partition: {partition}")
        return [f"cm://{partition}"] + [
            f"cm://{partition}!{n}"
            for n in range(1, len(self.cm_replicas.get(partition, ())) + 1)
        ]

    # ------------------------------------------------------------------
    # Clients and peers
    # ------------------------------------------------------------------

    def create_client(
        self,
        email: str,
        password: str,
        region: str = "CH",
        net_addr: Optional[str] = None,
        register: bool = True,
        version: Optional[str] = None,
        image: Optional[bytes] = None,
        key_bits: Optional[int] = None,
        keypair=None,
    ) -> Client:
        """Register (optionally) and build one client in a region.

        ``keypair`` injects a pre-generated client RSA key (see
        :class:`~repro.core.client.Client`); synthetic fleets share one
        to skip the per-client keygen cost.
        """
        if register and not self.accounts.exists(email):
            self.accounts.register(email, password)
        self._client_counter += 1
        client = Client(
            email=email,
            password=password,
            version=version or self.client_version,
            image=image if image is not None else self.client_image,
            net_addr=net_addr or self.geo.random_address(region, self.rng),
            redirection=self.redirection,
            directory=self.directory,
            drbg=self._drbg.fork(f"client-{self._client_counter}-{email}".encode()),
            key_bits=key_bits or self.key_bits,
            keypair=keypair,
        )
        if self.tracer is not None:
            client.tracer = self.tracer
        return client

    def make_peer(self, client: Client, channel_id: str, capacity: int = 4) -> Peer:
        """Wrap a ticketed client as an overlay peer."""
        return self._build_peer(client, channel_id, capacity, Peer)

    def make_adversarial_peer(
        self,
        client: Client,
        channel_id: str,
        config: "AdversaryConfig",
        capacity: int = 4,
    ) -> "AdversarialPeer":
        """Wrap a ticketed client as a *Byzantine* overlay peer.

        The adversary is a fully authorized viewer -- it passes every
        ticket check -- whose misbehavior schedule is ``config``.
        """
        from repro.p2p.adversary import AdversarialPeer

        return self._build_peer(
            client, channel_id, capacity, AdversarialPeer, config=config
        )

    def _build_peer(self, client, channel_id, capacity, peer_cls, **extra):
        if client.channel_ticket is None or client.channel_ticket.channel_id != channel_id:
            raise ReproError("client must hold a channel ticket for this channel")
        record = self.policy_manager.get_channel(channel_id)
        geo_record = self.geo.lookup(client.net_addr)
        peer = peer_cls(
            peer_id=f"peer-{client.channel_ticket.user_id}",
            client=client,
            channel_id=channel_id,
            cm_public_key=self.channel_managers[record.partition].public_key,
            drbg=self._drbg.fork(f"peer-{client.channel_ticket.user_id}".encode()),
            capacity=capacity,
            region=geo_record.region if geo_record is not None else "?",
            asn=geo_record.asn if geo_record is not None else 0,
            **extra,
        )
        if self.tracer is not None:
            peer.tracer = self.tracer
        if self.crypto_pool is not None:
            peer.crypto_pool = self.crypto_pool
        if self.scorecard is not None:
            peer.scorecard = self.scorecard
            self.scorecard.note_address(peer.peer_id, peer.address)
        return peer

    def watch(self, client: Client, channel_id: str, now: float, capacity: int = 4) -> Peer:
        """Convenience: switch + join + register in one call.

        Returns the client's overlay peer, fully connected.
        """
        response = client.switch_channel(channel_id, now)
        peer = self.make_peer(client, channel_id, capacity=capacity)
        self.overlay(channel_id).join(peer, response.peers, now)
        return peer

"""Storm runners: lockstep-sequential and multi-process parallel.

Both runners execute the *identical* per-shard code
(:meth:`~repro.parallel.shardstorm.ShardRig.run_window`) under the
identical window schedule and the identical deterministic message
routing, so their transcripts are byte-for-byte equal.  The only
difference is where the shards live: on the calling thread, or spread
round-robin over forked worker processes that exchange bridge traffic
with the parent at every window barrier.

Message routing happens in exactly one place (:func:`route_messages`)
shared by both paths: messages are grouped by destination shard and
sorted by ``(sent_at, src, seq, kind)``, and each shard delivers its
inbox in that order -- so event sequence numbers, and therefore
tie-breaks, match between runners.

The parallel runner uses the ``fork`` start method (workers inherit
the config; nothing depends on re-import semantics) and plain pipes.
Platforms without ``fork`` fall back to the sequential runner, which
is always available and always produces the same bytes.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.parallel.shardstorm import (
    BridgeMessage,
    ShardRig,
    ShardStormConfig,
    TranscriptEntry,
)


@dataclass
class StormOutcome:
    """Everything a sharded storm run produced."""

    #: Merged transcript: JSON lines ordered by (time, shard, seq).
    transcript: List[str]
    #: Per-operation completion counts summed over shards.
    counts: Dict[str, int]
    #: Protocol errors (expected: none).
    errors: List[str]
    shards: int
    #: Worker processes the run actually used (1 = sequential).
    workers: int
    windows: int
    #: Bridge messages exchanged across shard boundaries.
    bridge_messages: int
    #: Wall-clock busy seconds each shard spent inside run_window.
    per_shard_busy: List[float] = field(default_factory=list)
    #: Total wall-clock seconds for the run.
    wall_seconds: float = 0.0

    @property
    def operations(self) -> int:
        return sum(self.counts.values())


def route_messages(
    messages: List[BridgeMessage], shards: int
) -> List[List[BridgeMessage]]:
    """Group barrier traffic by destination shard, deterministically.

    The sort key ``(sent_at, src, seq, kind)`` is a total order over
    the barrier's messages (source shards number their requests and
    each reply reuses its request's id), so every runner -- and every
    run -- delivers each inbox in the same order.
    """
    inboxes: List[List[BridgeMessage]] = [[] for _ in range(shards)]
    for msg in sorted(messages, key=BridgeMessage.sort_key):
        if not 0 <= msg.dst < shards:
            raise ValueError(f"message routed to unknown shard {msg.dst}")
        inboxes[msg.dst].append(msg)
    return inboxes


def _finalize(
    config: ShardStormConfig,
    entries: List[TranscriptEntry],
    counts: Dict[str, int],
    errors: List[str],
    workers: int,
    bridge_messages: int,
    per_shard_busy: List[float],
    wall_seconds: float,
) -> StormOutcome:
    entries.sort(key=lambda e: (e[0], e[1], e[2]))
    return StormOutcome(
        transcript=[line for _, _, _, line in entries],
        counts=counts,
        errors=errors,
        shards=config.shards,
        workers=workers,
        windows=len(config.window_ends()),
        bridge_messages=bridge_messages,
        per_shard_busy=per_shard_busy,
        wall_seconds=wall_seconds,
    )


# ----------------------------------------------------------------------
# Sequential runner
# ----------------------------------------------------------------------


def _run_sequential(config: ShardStormConfig) -> StormOutcome:
    started = time.perf_counter()
    rigs = [ShardRig(config, shard) for shard in range(config.shards)]
    busy = [0.0] * config.shards
    inboxes: List[List[BridgeMessage]] = [[] for _ in range(config.shards)]
    entries: List[TranscriptEntry] = []
    bridge_messages = 0

    for end in config.window_ends():
        outbound: List[BridgeMessage] = []
        for shard, rig in enumerate(rigs):
            t0 = time.perf_counter()
            out, lines = rig.run_window(end, inboxes[shard])
            busy[shard] += time.perf_counter() - t0
            outbound.extend(out)
            entries.extend(lines)
        bridge_messages += len(outbound)
        inboxes = route_messages(outbound, config.shards)

    counts: Dict[str, int] = {}
    errors: List[str] = []
    for rig in rigs:
        for name, value in rig.counts.items():
            counts[name] = counts.get(name, 0) + value
        errors.extend(rig.errors)
    return _finalize(
        config,
        entries,
        counts,
        errors,
        workers=1,
        bridge_messages=bridge_messages,
        per_shard_busy=busy,
        wall_seconds=time.perf_counter() - started,
    )


# ----------------------------------------------------------------------
# Parallel runner
# ----------------------------------------------------------------------


def _worker_main(conn, config: ShardStormConfig, shard_ids: List[int]) -> None:
    """Host ``shard_ids`` and step them window by window.

    Protocol (parent -> worker): ``("window", end, {shard: inbox})``
    then a final ``("finish",)``.  Worker -> parent: ``("window",
    outbound, entries)`` per window, ``("done", per-shard results)`` at
    the end, or ``("error", message)`` on any exception.
    """
    try:
        rigs = {shard: ShardRig(config, shard) for shard in shard_ids}
        busy = {shard: 0.0 for shard in shard_ids}
        conn.send(("ready",))
        while True:
            command = conn.recv()
            if command[0] == "window":
                _, end, inbound_by_shard = command
                outbound: List[BridgeMessage] = []
                entries: List[TranscriptEntry] = []
                for shard in shard_ids:
                    t0 = time.perf_counter()
                    out, lines = rigs[shard].run_window(
                        end, inbound_by_shard.get(shard, [])
                    )
                    busy[shard] += time.perf_counter() - t0
                    outbound.extend(out)
                    entries.extend(lines)
                conn.send(("window", outbound, entries))
            elif command[0] == "finish":
                results = {
                    shard: (rigs[shard].counts, rigs[shard].errors, busy[shard])
                    for shard in shard_ids
                }
                conn.send(("done", results))
                return
            else:
                raise RuntimeError(f"unknown command {command[0]!r}")
    except Exception as exc:
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        conn.close()


def _expect(conn, kinds: Tuple[str, ...]):
    reply = conn.recv()
    if reply[0] == "error":
        raise RuntimeError(f"storm worker failed: {reply[1]}")
    if reply[0] not in kinds:
        raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
    return reply


def _run_parallel(config: ShardStormConfig, workers: int) -> StormOutcome:
    started = time.perf_counter()
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return _run_sequential(config)

    workers = min(workers, config.shards)
    #: shard -> worker, round-robin; worker -> its shards, in order.
    assignment = {shard: shard % workers for shard in range(config.shards)}
    shards_of = [
        [shard for shard in range(config.shards) if assignment[shard] == w]
        for w in range(workers)
    ]

    conns = []
    procs = []
    try:
        for w in range(workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, config, shards_of[w])
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)
        for conn in conns:
            _expect(conn, ("ready",))

        entries: List[TranscriptEntry] = []
        inboxes: List[List[BridgeMessage]] = [[] for _ in range(config.shards)]
        bridge_messages = 0
        for end in config.window_ends():
            for w, conn in enumerate(conns):
                inbound = {
                    shard: inboxes[shard]
                    for shard in shards_of[w]
                    if inboxes[shard]
                }
                conn.send(("window", end, inbound))
            outbound: List[BridgeMessage] = []
            for conn in conns:
                _, out, lines = _expect(conn, ("window",))
                outbound.extend(out)
                entries.extend(lines)
            bridge_messages += len(outbound)
            inboxes = route_messages(outbound, config.shards)

        counts: Dict[str, int] = {}
        errors_by_shard: Dict[int, List[str]] = {}
        busy = [0.0] * config.shards
        for conn in conns:
            conn.send(("finish",))
        for conn in conns:
            _, results = _expect(conn, ("done",))
            for shard, (shard_counts, shard_errors, shard_busy) in results.items():
                for name, value in shard_counts.items():
                    counts[name] = counts.get(name, 0) + value
                errors_by_shard[shard] = shard_errors
                busy[shard] = shard_busy
        errors = [e for shard in sorted(errors_by_shard) for e in errors_by_shard[shard]]
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            proc.join(timeout=30)
            if proc.is_alive():
                proc.terminate()
                proc.join()

    return _finalize(
        config,
        entries,
        counts,
        errors,
        workers=workers,
        bridge_messages=bridge_messages,
        per_shard_busy=busy,
        wall_seconds=time.perf_counter() - started,
    )


def run_sharded_storm(config: ShardStormConfig, workers: int = 1) -> StormOutcome:
    """Run the sharded switch storm on ``workers`` processes.

    ``workers <= 1`` runs every shard on the calling thread; more than
    one forks worker processes and steps them in lockstep windows.
    Either way the transcript is a pure function of ``config``.
    """
    if workers <= 1 or config.shards < 2:
        return _run_sequential(config)
    return _run_parallel(config, workers)

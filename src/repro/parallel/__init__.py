"""Multi-core execution: process-pool crypto plane + sharded storm driver.

Everything else in the repository runs on one Python thread; this
package is where the hardware becomes the limit.  Two independent
pieces:

* :mod:`repro.parallel.pool` -- a :class:`~repro.parallel.pool.CryptoPool`
  offloading RSA private operations and batch sealing to worker
  processes, with chunked submission, ordered result stitching, and a
  counter snapshot-and-merge protocol so offloaded work stays visible
  in ``Deployment.metrics``.  Wired everywhere by
  ``Deployment.enable_multicore(workers=N)``.
* :mod:`repro.parallel.shardstorm` / :mod:`repro.parallel.driver` -- a
  sharded switch storm whose shards (independent farm + overlay
  regions, each with its own event loop) run on worker processes under
  conservative virtual-time synchronization: cross-shard RPCs cross a
  bridge at the typed-transport layer, and the window width never
  exceeds the inter-shard latency, so no message ever arrives in a
  worker's past.  The sequential and parallel runners execute the
  identical per-shard code and produce byte-identical transcripts.
"""

from repro.parallel.pool import CryptoPool, PooledSigningKey, PoolStats
from repro.parallel.shardstorm import ShardRig, ShardStormConfig
from repro.parallel.driver import StormOutcome, run_sharded_storm

__all__ = [
    "CryptoPool",
    "PooledSigningKey",
    "PoolStats",
    "ShardRig",
    "ShardStormConfig",
    "StormOutcome",
    "run_sharded_storm",
]

"""The sharded switch storm: independent regions, one bridged protocol.

Partitioning follows the manager tier (PR 6): each *shard* is an
Authentication Domain plus a Channel Listing Partition plus that
partition's channels and viewers, with its own simulator, virtual
network, and service stations.  Shards only interact where the real
system's farms would -- RPC calls to another shard's Channel Manager --
and those calls cross a :class:`ShardBridge` at the typed-transport
cut point (``VirtualNetwork.call``), addressed as
``xshard://<shard>/cm``.

Conservative synchronization invariant
--------------------------------------
The runners advance all shards in lockstep windows of width ``W`` and
exchange bridge messages at the barriers.  Every bridge message takes
the fixed inter-shard latency ``L``; with ``W <= L``, a message sent
during window *i* (``sent_at >= T_i``) arrives at
``sent_at + L >= T_i + W = T_{i+1}`` -- never before the destination
shard's clock at delivery time.  :meth:`ShardBridge.deliver` asserts
this, so a lookahead bug fails loudly instead of silently reordering
the protocol.

Determinism
-----------
Every shard builds an identical :class:`~repro.deployment.Deployment`
from the storm seed (same farm credentials everywhere, so a Channel
Manager verifies a *remote* domain's User Tickets with keys it already
holds), and runs only its own domain/partition/viewers.  All
randomness is seeded from ``(seed, shard)``; client compute is charged
through the deterministic cost model.  The transcript -- one JSON line
per completed protocol operation -- is therefore a pure function of
the config, byte-identical between the sequential and parallel runners
and across repeated runs.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.deployment import Deployment
from repro.errors import ReproError, SimulationError
from repro.sim.driver import AsyncClient, wire_channel_manager, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import RequestContext, VirtualNetwork
from repro.sim.station import ServiceStation

#: Bridge address scheme for cross-shard RPC targets.
XSHARD_PREFIX = "xshard://"

#: Renewal kicks off this long before Channel Ticket expiry.
RENEW_LEAD = 48.0

#: A transcript entry: (virtual time, shard, per-shard seq, JSON line).
TranscriptEntry = Tuple[float, int, int, str]


@dataclass(frozen=True)
class ShardStormConfig:
    """Everything a worker needs to rebuild its shard (picklable)."""

    shards: int = 2
    clients_per_shard: int = 4
    seed: int = 29
    horizon: float = 150.0
    channels_per_shard: int = 2
    #: Seconds between a client's channel switches.
    switch_period: float = 20.0
    #: Every ``cross_every``-th switch targets another shard's CM.
    cross_every: int = 3
    #: Lockstep window width (the lookahead).
    window: float = 0.25
    #: One-way latency of the inter-shard bridge.
    inter_shard_latency: float = 0.25
    #: Short ticket lifetime so renewals land inside the horizon.
    ticket_lifetime: float = 120.0
    key_bits: int = 512

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ReproError("need at least one shard")
        if self.window <= 0 or self.inter_shard_latency <= 0:
            raise ReproError("window and inter-shard latency must be positive")
        if self.window > self.inter_shard_latency:
            raise ReproError(
                "conservative sync needs window <= inter-shard latency "
                f"(window={self.window}, latency={self.inter_shard_latency})"
            )

    def window_ends(self) -> List[float]:
        """Barrier times covering [0, horizon]."""
        ends: List[float] = []
        t = self.window
        while t < self.horizon:
            ends.append(t)
            t += self.window
        ends.append(self.horizon)
        return ends

    def channel_name(self, shard: int, index: int) -> str:
        return f"sh{shard}-ch{index % self.channels_per_shard}"


@dataclass
class BridgeMessage:
    """One cross-shard request or reply, exchanged at window barriers."""

    kind: str  # "request" | "reply"
    rid: Tuple[int, int]  # (source shard, per-shard sequence)
    src: int
    dst: int
    sent_at: float
    #: Request fields (empty on replies).
    local_address: str = ""
    method: str = ""
    payload: Any = None
    caller_address: str = ""
    #: Reply fields (empty on requests).
    response: Any = None
    #: Handler exceptions cross the bridge as strings: every exception
    #: type pickles differently, a string never surprises.
    error: Optional[str] = None

    def sort_key(self) -> Tuple[float, int, int, str]:
        return (self.sent_at, self.rid[0], self.rid[1], self.kind)


class ShardBridge:
    """The cross-shard transport: outbox, inbox, conservative delivery.

    Installed as ``VirtualNetwork.remote_router``; owns every
    ``xshard://`` address.  Outbound calls are queued and handed to the
    runner at the next barrier; inbound messages are scheduled onto the
    local simulator at ``sent_at + latency``, which the window
    invariant guarantees is never in the past.
    """

    def __init__(
        self, shard: int, sim: Simulator, network: VirtualNetwork, latency: float
    ) -> None:
        self.shard = shard
        self.sim = sim
        self.network = network
        self.latency = latency
        self.outbox: List[BridgeMessage] = []
        self._pending: Dict[Tuple[int, int], Tuple[Callable, Optional[Callable]]] = {}
        self._seq = 0
        self.requests_sent = 0
        self.requests_served = 0

    def owns(self, address: str) -> bool:
        return address.startswith(XSHARD_PREFIX)

    @staticmethod
    def parse(address: str) -> Tuple[int, str]:
        """``xshard://3/cm`` -> ``(3, "rpc://cm")``."""
        rest = address[len(XSHARD_PREFIX):]
        shard_part, _, name = rest.partition("/")
        if not shard_part.isdigit() or not name:
            raise SimulationError(f"malformed cross-shard address: {address}")
        return int(shard_part), f"rpc://{name}"

    # -- outbound ----------------------------------------------------

    def send(
        self,
        caller_address: str,
        caller_region: str,
        dst_address: str,
        method: str,
        payload: Any,
        on_reply: Callable[[Any], None],
        on_error: Optional[Callable[[Exception], None]],
        now: float,
    ) -> None:
        dst_shard, local_address = self.parse(dst_address)
        if dst_shard == self.shard:
            raise SimulationError(
                f"cross-shard call to own shard {self.shard}: {dst_address}"
            )
        rid = (self.shard, self._seq)
        self._seq += 1
        self._pending[rid] = (on_reply, on_error)
        self.requests_sent += 1
        self.outbox.append(
            BridgeMessage(
                kind="request",
                rid=rid,
                src=self.shard,
                dst=dst_shard,
                sent_at=now,
                local_address=local_address,
                method=method,
                payload=payload,
                caller_address=caller_address,
            )
        )

    def drain_outbox(self) -> List[BridgeMessage]:
        out, self.outbox = self.outbox, []
        return out

    # -- inbound -----------------------------------------------------

    def deliver(self, msg: BridgeMessage) -> None:
        """Schedule an inbound message's arrival on the local clock."""
        arrival = msg.sent_at + self.latency
        if arrival < self.sim.now - 1e-9:
            raise SimulationError(
                "conservative window violated: message sent at "
                f"{msg.sent_at} + latency {self.latency} arrives at {arrival}, "
                f"but shard {self.shard} is already at {self.sim.now}"
            )
        if msg.kind == "request":
            self._deliver_request(msg, max(arrival, self.sim.now))
        elif msg.kind == "reply":
            self._deliver_reply(msg, max(arrival, self.sim.now))
        else:
            raise SimulationError(f"unknown bridge message kind: {msg.kind!r}")

    def _deliver_request(self, msg: BridgeMessage, arrival: float) -> None:
        service = self.network.service(msg.local_address)

        def run_handler(sim: Simulator) -> None:
            self.requests_served += 1
            ctx = RequestContext(caller_address=msg.caller_address, now=sim.now)
            response: Any = None
            error: Optional[str] = None
            try:
                response = service.handler_for(msg.method)(msg.payload, ctx)
            except Exception as exc:  # denials travel back as strings
                error = f"{type(exc).__name__}: {exc}"
            self.outbox.append(
                BridgeMessage(
                    kind="reply",
                    rid=msg.rid,
                    src=self.shard,
                    dst=msg.src,
                    sent_at=sim.now,
                    response=response,
                    error=error,
                )
            )

        def arrive(sim: Simulator) -> None:
            if service.station is not None:
                service.station.submit(
                    on_complete=lambda sim2, _sojourn: run_handler(sim2)
                )
            else:
                run_handler(sim)

        self.sim.schedule_at(arrival, arrive)

    def _deliver_reply(self, msg: BridgeMessage, arrival: float) -> None:
        callbacks = self._pending.pop(msg.rid, None)
        if callbacks is None:
            raise SimulationError(f"reply for unknown request {msg.rid}")
        on_reply, on_error = callbacks

        def arrive(sim: Simulator) -> None:
            if msg.error is not None:
                if on_error is not None:
                    on_error(SimulationError(f"remote shard: {msg.error}"))
                return
            on_reply(msg.response)

        self.sim.schedule_at(arrival, arrive)


class ShardRig:
    """One shard's complete world: farms, network, viewers, transcript."""

    def __init__(self, config: ShardStormConfig, shard: int) -> None:
        if not 0 <= shard < config.shards:
            raise ReproError(f"shard {shard} out of range")
        self.config = config
        self.shard = shard
        self.counts: Dict[str, int] = {}
        self.errors: List[str] = []
        self.transcript: List[TranscriptEntry] = []
        self._line_seq = 0
        self._emitted = 0

        # Identical deployment in every shard: one domain and one
        # partition *per shard*, so shard k serves domain-k/part-k but
        # already holds every other domain's verification keys.
        deployment = Deployment(
            seed=config.seed,
            n_domains=config.shards,
            partitions=tuple(f"part-{j}" for j in range(config.shards)),
            key_bits=config.key_bits,
            channel_ticket_lifetime=config.ticket_lifetime,
        )
        for j in range(config.shards):
            for c in range(config.channels_per_shard):
                deployment.add_free_channel(
                    config.channel_name(j, c), regions=["CH"], partition=f"part-{j}"
                )
        self.deployment = deployment

        self.sim = Simulator()
        rng = random.Random(config.seed * 1000003 + shard)
        latency = LatencyModel(
            random.Random(rng.randrange(2**63)),
            table={("CH", "dc"): RegionRtt(base_rtt=0.08, sigma=0.01, slow_path_prob=0.0)},
        )
        self.network = VirtualNetwork(
            self.sim, latency, random.Random(rng.randrange(2**63))
        )
        um_station = ServiceStation(
            self.sim, 2, 0.005, random.Random(rng.randrange(2**63)), name=f"um{shard}"
        )
        cm_station = ServiceStation(
            self.sim, 2, 0.005, random.Random(rng.randrange(2**63)), name=f"cm{shard}"
        )
        wire_user_manager(
            self.network,
            deployment.user_managers[f"domain-{shard}"],
            "rpc://um",
            station=um_station,
        )
        wire_channel_manager(
            self.network,
            deployment.channel_managers[f"part-{shard}"],
            "rpc://cm",
            station=cm_station,
        )
        self.bridge = ShardBridge(
            shard, self.sim, self.network, latency=config.inter_shard_latency
        )
        self.network.remote_router = self.bridge

        self._addr_rng = random.Random(rng.randrange(2**63))
        self.fleet: List[AsyncClient] = []
        for index in range(config.clients_per_shard):
            self._add_client(index)

    # -- transcript --------------------------------------------------

    def _record(
        self, op: str, email: str, channel: str, signature: Optional[bytes]
    ) -> None:
        self.counts[op] = self.counts.get(op, 0) + 1
        seq = self._line_seq
        self._line_seq += 1
        line = json.dumps(
            {
                "t": self.sim.now,
                "shard": self.shard,
                "seq": seq,
                "client": email,
                "op": op,
                "channel": channel,
                "sig": hashlib.sha256(signature).hexdigest()[:12]
                if signature
                else "-",
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        self.transcript.append((self.sim.now, self.shard, seq, line))

    # -- workload ----------------------------------------------------

    def _remote_shard(self, op_index: int) -> int:
        config = self.config
        offset = 1 + (op_index // config.cross_every) % (config.shards - 1)
        return (self.shard + offset) % config.shards

    def _add_client(self, index: int) -> None:
        config = self.config
        deployment = self.deployment
        email = f"s{self.shard}c{index}@example.org"
        deployment.accounts.register(email, "pw")
        viewer = AsyncClient(
            network=self.network,
            email=email,
            password="pw",
            version=deployment.client_version,
            image=deployment.client_image,
            net_addr=deployment.geo.random_address("CH", self._addr_rng),
            region="CH",
            drbg=HmacDrbg(email.encode(), b"shardstorm"),
            key_bits=config.key_bits,
        )
        self.fleet.append(viewer)
        state = {"op": 0, "cm": "rpc://cm"}

        def fail(exc: Exception) -> None:
            self.errors.append(f"{email}: {exc}")
            self._record("ERROR", email, "-", None)

        def next_switch(_sim: Simulator) -> None:
            n = state["op"]
            state["op"] += 1
            cross = (
                config.shards > 1 and n % config.cross_every == config.cross_every - 1
            )
            if cross:
                dst = self._remote_shard(n)
                address = f"{XSHARD_PREFIX}{dst}/cm"
                channel = config.channel_name(dst, n)
            else:
                address = "rpc://cm"
                channel = config.channel_name(self.shard, n)

            def switched(response) -> None:
                state["cm"] = address
                self._record(
                    "XSWITCH" if cross else "SWITCH",
                    email,
                    channel,
                    response.ticket.signature,
                )
                self.sim.schedule(config.switch_period, next_switch)

            def switch_failed(exc: Exception) -> None:
                fail(exc)
                self.sim.schedule(config.switch_period, next_switch)

            viewer.start_switch(
                address, channel, on_done=switched, on_fail=switch_failed
            )

        def logged_in() -> None:
            self._record("LOGIN", email, "-", viewer.user_ticket.signature)
            next_switch(self.sim)

        def kickoff(_sim: Simulator) -> None:
            viewer.start_login("rpc://um", on_done=logged_in, on_fail=fail)

        def renew(_sim: Simulator) -> None:
            if viewer.channel_ticket is None:
                return

            def renewed(response) -> None:
                self._record(
                    "RENEWAL", email, response.ticket.channel_id, response.ticket.signature
                )

            viewer.start_renewal(state["cm"], on_done=renewed, on_fail=fail)

        self.sim.schedule(0.5 + 0.7 * index, kickoff)
        renew_at = config.ticket_lifetime - RENEW_LEAD + 0.5 * index
        if config.horizon > renew_at:
            self.sim.schedule(renew_at, renew)

    # -- windowed execution ------------------------------------------

    def run_window(
        self, end: float, inbound: List[BridgeMessage]
    ) -> Tuple[List[BridgeMessage], List[TranscriptEntry]]:
        """Deliver inbound bridge traffic, advance the clock to ``end``.

        Returns the outbound bridge messages generated during the
        window and the transcript entries completed in it.
        """
        for msg in inbound:
            self.bridge.deliver(msg)
        self.sim.run(until=end)
        lines = self.transcript[self._emitted:]
        self._emitted = len(self.transcript)
        return self.bridge.drain_outbox(), lines

"""Process-pool crypto plane.

The data plane's batch entry points (``SymmetricKey.encrypt_many``,
the key fan-out in ``reencrypt_key_for_links``) and the managers' RSA
signing are pure CPU: no shared mutable state, inputs and outputs are
plain bytes and frozen dataclasses.  That makes them natural units to
ship to worker processes -- which is what :class:`CryptoPool` does.

Design points:

* **Chunked submission, ordered stitching.**  A batch of *n* items is
  split into roughly ``2 x workers`` contiguous chunks (never smaller
  than ``min_chunk``); results are collected in submission order, so
  the stitched output is exactly what the in-process call would have
  produced.
* **Counter snapshot-and-merge.**  The dataplane/hotpath counters are
  process-global, so work done in a worker would silently vanish from
  ``Deployment.metrics``.  Every task snapshots the worker's counters
  before and after, returns the delta alongside its results, and the
  parent folds the deltas back in (``DataplaneCounters.merge`` /
  ``HotpathCounters.merge``).
* **Synchronous in-process fallback.**  With ``workers<=1``, when the
  platform refuses to fork, or when a batch is too small to amortize
  the IPC, the call runs inline -- byte-for-byte the same results,
  just on the calling thread.  Callers never branch on pool presence.

The pool uses the ``fork`` start method: key objects and counter
modules are inherited cheaply, and nothing here depends on re-import
(``spawn``) semantics.  Platforms without ``fork`` get the inline
fallback automatically.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.dataplane import counters as dataplane_counters
from repro.metrics.hotpath import counters as hotpath_counters

Delta = Tuple[Dict[str, int], Dict[str, int]]


# ----------------------------------------------------------------------
# Worker-side task functions (module level: picklable under fork and
# spawn alike).  Each returns (results, (dataplane_delta, hotpath_delta)).
# ----------------------------------------------------------------------


def _counters_before() -> Tuple[Dict[str, int], Dict[str, int]]:
    return dataplane_counters.snapshot(), hotpath_counters.snapshot()


def _counters_delta(before: Tuple[Dict[str, int], Dict[str, int]]) -> Delta:
    dp_before, hp_before = before
    dp_after = dataplane_counters.snapshot()
    hp_after = hotpath_counters.snapshot()
    dp = {k: v - dp_before[k] for k, v in dp_after.items() if v != dp_before[k]}
    hp = {k: v - hp_before[k] for k, v in hp_after.items() if v != hp_before[k]}
    return dp, hp


def _task_encrypt_many(key, plaintexts, nonces, aad):
    before = _counters_before()
    out = key.encrypt_many(plaintexts, nonces, aad=aad)
    return out, _counters_delta(before)


def _task_seal_links(material, serial, aad, session_keys):
    before = _counters_before()
    out = [sk.encrypt(material, nonce=serial, aad=aad) for sk in session_keys]
    return out, _counters_delta(before)


def _task_sign_many(key, messages):
    before = _counters_before()
    out = [key.sign(m) for m in messages]
    return out, _counters_delta(before)


def _task_decrypt_many(key, ciphertexts):
    before = _counters_before()
    out = [key.decrypt(c) for c in ciphertexts]
    return out, _counters_delta(before)


@dataclass
class PoolStats:
    """Bookkeeping the pool exposes through ``Deployment.metrics``."""

    #: Worker processes actually running (0 = inline fallback).
    workers: int = 0
    #: Batches shipped to workers / items inside them.
    batches_offloaded: int = 0
    items_offloaded: int = 0
    #: Batches that ran inline (pool absent or batch under threshold).
    batches_inline: int = 0
    items_inline: int = 0
    #: Worker counter deltas folded back into the global registries.
    counter_merges: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CryptoPool:
    """Offload batch crypto to worker processes; fall back inline.

    Parameters
    ----------
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.
        ``workers <= 1`` skips process creation entirely -- every call
        runs inline.
    min_chunk:
        Smallest per-worker chunk worth the IPC; batches shorter than
        ``2 * min_chunk`` run inline.
    offload_single_ops:
        Route even single RSA operations (one manager signature) to
        the pool.  Off by default: at the repository's 512-bit test
        keys one exponentiation is cheaper than the round trip, so the
        default only offloads real batches.  At production key sizes
        the trade flips -- that is what the switch is for.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        min_chunk: int = 8,
        offload_single_ops: bool = False,
        start_method: str = "fork",
    ) -> None:
        if workers is None:
            workers = os.cpu_count() or 1
        if min_chunk < 1:
            raise ValueError("min_chunk must be >= 1")
        self.workers = max(1, int(workers))
        self.min_chunk = min_chunk
        self.offload_single_ops = offload_single_ops
        self.stats = PoolStats()
        self._pool = None
        if self.workers > 1:
            try:
                ctx = multiprocessing.get_context(start_method)
                self._pool = ctx.Pool(processes=self.workers)
                self.stats.workers = self.workers
            except (ValueError, OSError, ImportError):
                # No fork on this platform (or process limits): the
                # inline fallback serves every call instead.
                self._pool = None

    # -- lifecycle ---------------------------------------------------

    @property
    def pooled(self) -> bool:
        """True when worker processes are live."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the workers down; the pool keeps working inline."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self.stats.workers = 0

    def __enter__(self) -> "CryptoPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- internals ---------------------------------------------------

    def _chunk_ranges(self, n: int) -> List[Tuple[int, int]]:
        """Contiguous [start, end) ranges covering 0..n, ~2 per worker."""
        per = max(self.min_chunk, -(-n // (self.workers * 2)))
        return [(i, min(i + per, n)) for i in range(0, n, per)]

    def _merge(self, delta: Delta) -> None:
        dp, hp = delta
        if dp:
            dataplane_counters.merge(dp)
        if hp:
            hotpath_counters.merge(hp)
        self.stats.counter_merges += 1

    def _run_chunked(self, task, n: int, make_args) -> list:
        """Submit chunks, stitch results in submission order."""
        handles = [
            self._pool.apply_async(task, make_args(a, b))
            for a, b in self._chunk_ranges(n)
        ]
        out: list = []
        for handle in handles:
            chunk, delta = handle.get()
            out.extend(chunk)
            self._merge(delta)
        self.stats.batches_offloaded += 1
        self.stats.items_offloaded += n
        return out

    def _offload(self, n: int) -> bool:
        if not self.pooled:
            return False
        if self.offload_single_ops:
            return True
        return n >= 2 * self.min_chunk

    # -- batch sealing -----------------------------------------------

    def encrypt_many(
        self,
        key,
        plaintexts: Sequence[bytes],
        nonces: Sequence[int],
        aad: bytes = b"",
    ) -> List[bytes]:
        """``SymmetricKey.encrypt_many`` across the workers.

        Validation -- length agreement, non-negative nonces, and the
        intra-batch duplicate-nonce check -- runs over the *full* batch
        before chunking: a duplicate split across two chunks would
        otherwise slip past the per-chunk checks.
        """
        if len(plaintexts) != len(nonces):
            raise ValueError(
                f"{len(plaintexts)} plaintexts but {len(nonces)} nonces"
            )
        if any(nonce < 0 for nonce in nonces):
            raise ValueError("nonce must be non-negative")
        if len(set(nonces)) != len(nonces):
            raise ValueError("duplicate nonce in batch (keystream reuse)")
        n = len(plaintexts)
        if not self._offload(n):
            self.stats.batches_inline += 1
            self.stats.items_inline += n
            return key.encrypt_many(plaintexts, nonces, aad=aad)
        return self._run_chunked(
            _task_encrypt_many,
            n,
            lambda a, b: (key, list(plaintexts[a:b]), list(nonces[a:b]), aad),
        )

    def seal_links(
        self, material: bytes, serial: int, aad: bytes, session_keys: Sequence
    ) -> List[bytes]:
        """The key fan-out's per-child sealing, chunked across workers.

        Raw arguments (material/serial/aad) rather than core types so
        the pool has no dependency on :mod:`repro.core`;
        ``reencrypt_key_for_links`` does the unpacking.
        """
        keys = list(session_keys)
        n = len(keys)
        if not self._offload(n):
            self.stats.batches_inline += 1
            self.stats.items_inline += n
            return [sk.encrypt(material, nonce=serial, aad=aad) for sk in keys]
        return self._run_chunked(
            _task_seal_links,
            n,
            lambda a, b: (material, serial, aad, keys[a:b]),
        )

    # -- RSA private operations --------------------------------------

    def sign_many(self, key, messages: Sequence[bytes]) -> List[bytes]:
        """Batch RSA signing under one private key."""
        msgs = list(messages)
        n = len(msgs)
        if not self._offload(n):
            self.stats.batches_inline += 1
            self.stats.items_inline += n
            return [key.sign(m) for m in msgs]
        return self._run_chunked(
            _task_sign_many, n, lambda a, b: (key, msgs[a:b])
        )

    def decrypt_many(self, key, ciphertexts: Sequence[bytes]) -> List[bytes]:
        """Batch RSA decryption under one private key."""
        blobs = list(ciphertexts)
        n = len(blobs)
        if not self._offload(n):
            self.stats.batches_inline += 1
            self.stats.items_inline += n
            return [key.decrypt(c) for c in blobs]
        return self._run_chunked(
            _task_decrypt_many, n, lambda a, b: (key, blobs[a:b])
        )


class PooledSigningKey:
    """A drop-in signing key routing private ops through a pool.

    Managers hold their farm key as ``self._key`` and touch it only
    through ``sign``/``decrypt``/``public_key``; wrapping it here is
    how ``Deployment.enable_multicore`` puts the ticket-issuing paths
    behind the pool without changing a single manager line.  Every
    other attribute passes through to the wrapped key.
    """

    def __init__(self, inner, pool: CryptoPool) -> None:
        # The inner key may itself be wrapped (enable_multicore called
        # twice); unwrap so the chain never grows.
        while isinstance(inner, PooledSigningKey):
            inner = inner.inner
        self.inner = inner
        self.pool = pool

    @property
    def public_key(self):
        return self.inner.public_key

    def sign(self, message: bytes) -> bytes:
        return self.pool.sign_many(self.inner, [message])[0]

    def decrypt(self, ciphertext: bytes) -> bytes:
        return self.pool.decrypt_many(self.inner, [ciphertext])[0]

    def __getattr__(self, name):
        return getattr(self.inner, name)

"""Causal tracing with virtual-time clocks.

One trace follows one protocol operation (a LOGIN, a channel SWITCH, a
renewal, a key-push cascade) across every component it touches --
client, redirection, manager farms, the RPC fabric, and the p2p
overlay -- as a tree of spans carrying a queue/service/network time
split.  See DESIGN.md section 9 for the span taxonomy and propagation
rules.

* :mod:`repro.trace.span` -- spans, contexts, and the :class:`Tracer`;
* :mod:`repro.trace.report` -- per-round percentile breakdowns and the
  causal tree dump behind ``repro trace report``;
* :mod:`repro.trace.storm` -- the traced channel-switch storm used by
  the CLI, the tests, and the CI smoke job.
"""

from repro.trace.span import (
    Span,
    TraceContext,
    TraceError,
    Tracer,
    load_spans,
    maybe_span,
)
from repro.trace.report import (
    join_breakdown,
    render_join_breakdown,
    render_report,
    render_tree,
    round_breakdown,
)

__all__ = [
    "Span",
    "TraceContext",
    "TraceError",
    "Tracer",
    "load_spans",
    "maybe_span",
    "join_breakdown",
    "render_join_breakdown",
    "render_report",
    "render_tree",
    "round_breakdown",
]

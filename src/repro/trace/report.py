"""Replaying a trace buffer into round breakdowns and causal trees.

Two views of the same spans:

* :func:`round_breakdown` groups spans by name and reports count,
  p50/p95 duration, and the mean queue/service/network split summed
  over each span's subtree -- the "where does a SWITCH spend its
  time" table;
* :func:`render_tree` dumps one trace as an indented causal tree --
  the "what did this one LOGIN actually do" view.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.reporting import format_table
from repro.metrics.stats import percentile
from repro.trace.span import Span, TraceError

#: Display order for span kinds: operations first, then rounds, then
#: the transport and server internals they decompose into.
_KIND_ORDER = {"op": 0, "round": 1, "push": 2, "rpc": 3, "server": 4, "link": 5}


def _children_index(spans: Sequence[Span]) -> Dict[int, List[Span]]:
    children: Dict[int, List[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    return children


def _subtree_split(
    span: Span,
    children: Dict[int, List[Span]],
    memo: Dict[int, Tuple[float, float, float]],
) -> Tuple[float, float, float]:
    """Queue/service/network totals over ``span`` and its descendants."""
    cached = memo.get(span.span_id)
    if cached is not None:
        return cached
    queue, service, network = span.queue_time, span.service_time, span.network_time
    for child in children.get(span.span_id, ()):
        c_queue, c_service, c_network = _subtree_split(child, children, memo)
        queue += c_queue
        service += c_service
        network += c_network
    memo[span.span_id] = (queue, service, network)
    return memo[span.span_id]


def round_breakdown(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Per-span-name statistics, ordered operations-first.

    Durations come from closed spans only; the queue/service/network
    columns are subtree totals, so an operation row (LOGIN, SWITCH)
    accounts for everything its rounds and RPCs spent.
    """
    children = _children_index(spans)
    memo: Dict[int, Tuple[float, float, float]] = {}
    groups: Dict[Tuple[str, str], List[Span]] = {}
    for span in spans:
        groups.setdefault((span.kind, span.name), []).append(span)

    rows: List[Dict[str, object]] = []
    for (kind, name), members in groups.items():
        durations = [s.duration for s in members if s.duration is not None]
        splits = [_subtree_split(s, children, memo) for s in members]
        count = len(members)
        rows.append(
            {
                "name": name,
                "kind": kind,
                "count": count,
                "p50": percentile(durations, 50) if durations else 0.0,
                "p95": percentile(durations, 95) if durations else 0.0,
                "avg_queue": sum(s[0] for s in splits) / count,
                "avg_service": sum(s[1] for s in splits) / count,
                "avg_network": sum(s[2] for s in splits) / count,
            }
        )
    rows.sort(key=lambda r: (_KIND_ORDER.get(r["kind"], 99), r["name"]))
    return rows


def _ms(value: float) -> str:
    return f"{value * 1000.0:.1f}"


def render_report(spans: Sequence[Span]) -> str:
    """The per-round table printed by ``repro trace report``."""
    if not spans:
        return "(no spans recorded)"
    rows = round_breakdown(spans)
    table = format_table(
        ["span", "kind", "count", "p50 ms", "p95 ms",
         "queue ms", "service ms", "network ms"],
        [
            [
                row["name"],
                row["kind"],
                str(row["count"]),
                _ms(row["p50"]),
                _ms(row["p95"]),
                _ms(row["avg_queue"]),
                _ms(row["avg_service"]),
                _ms(row["avg_network"]),
            ]
            for row in rows
        ],
    )
    n_traces = len({s.trace_id for s in spans})
    return f"{len(spans)} spans across {n_traces} traces\n\n{table}"


def join_breakdown(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Aggregate ``JOIN_E2E`` traces into a per-phase latency table.

    The overlay storm opens one ``JOIN_E2E`` root per viewer with
    phase children (REDIRECT, SWITCH, JOIN, FIRSTPKT); this collapses
    all of them into one row per phase -- count, p50/p99/mean -- plus
    a TOTAL row for the roots themselves, so a p99 join latency reads
    directly as "which phase is the tail made of".  Phase rows keep
    first-appearance order (the causal order of the join pipeline).
    """
    roots = [s for s in spans if s.name == "JOIN_E2E"]
    root_ids = {s.span_id for s in roots}
    order: List[str] = []
    groups: Dict[str, List[float]] = {}
    for span in spans:
        if span.parent_id in root_ids and span.duration is not None:
            if span.name not in groups:
                order.append(span.name)
                groups[span.name] = []
            groups[span.name].append(span.duration)

    def row(name: str, durations: List[float]) -> Dict[str, object]:
        return {
            "phase": name,
            "count": len(durations),
            "p50": percentile(durations, 50) if durations else 0.0,
            "p99": percentile(durations, 99) if durations else 0.0,
            "mean": sum(durations) / len(durations) if durations else 0.0,
        }

    rows = [row(name, groups[name]) for name in order]
    totals = [s.duration for s in roots if s.duration is not None]
    rows.append(row("TOTAL", totals))
    return rows


def render_join_breakdown(spans: Sequence[Span]) -> str:
    """The phase table printed by ``repro overlay storm``."""
    rows = join_breakdown(spans)
    if rows[-1]["count"] == 0 and len(rows) == 1:
        return "(no JOIN_E2E traces recorded)"
    return format_table(
        ["phase", "count", "p50 ms", "p99 ms", "mean ms"],
        [
            [
                row["phase"],
                str(row["count"]),
                _ms(row["p50"]),
                _ms(row["p99"]),
                _ms(row["mean"]),
            ]
            for row in rows
        ],
    )


def busiest_trace(spans: Sequence[Span]) -> int:
    """The trace id with the most spans (ties break toward the oldest)."""
    if not spans:
        raise TraceError("no spans to choose a trace from")
    counts: Dict[int, int] = {}
    for span in spans:
        counts[span.trace_id] = counts.get(span.trace_id, 0) + 1
    return max(sorted(counts), key=lambda tid: counts[tid])


def _tree_line(span: Span, depth: int) -> str:
    duration = span.duration
    timing = f"{_ms(duration)}ms" if duration is not None else "open"
    parts = [f"{'  ' * depth}{span.name} [{span.kind}] {timing}"]
    split = []
    if span.queue_time:
        split.append(f"queue={_ms(span.queue_time)}")
    if span.service_time:
        split.append(f"svc={_ms(span.service_time)}")
    if span.network_time:
        split.append(f"net={_ms(span.network_time)}")
    if split:
        parts.append("(" + " ".join(split) + ")")
    for key, value in span.annotations.items():
        parts.append(f"{key}={value}")
    return " ".join(parts)


def render_tree(spans: Sequence[Span], trace_id: Optional[int] = None) -> str:
    """One trace as an indented causal tree.

    Defaults to the busiest trace.  Spans whose parent was dropped by
    the tracer's buffer cap surface as extra roots rather than
    disappearing.
    """
    if not spans:
        return "(no spans recorded)"
    if trace_id is None:
        trace_id = busiest_trace(spans)
    members = [s for s in spans if s.trace_id == trace_id]
    if not members:
        raise TraceError(f"no spans for trace {trace_id}")
    present = {s.span_id for s in members}
    children = _children_index(members)
    roots = [s for s in members if s.parent_id is None or s.parent_id not in present]

    lines = [f"trace {trace_id} ({len(members)} spans)"]

    def walk(span: Span, depth: int) -> None:
        lines.append(_tree_line(span, depth))
        for child in sorted(
            children.get(span.span_id, ()), key=lambda s: (s.start, s.span_id)
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda s: (s.start, s.span_id)):
        walk(root, 1)
    return "\n".join(lines)

"""Spans, trace contexts, and the virtual-time tracer.

One span covers one causally meaningful interval: a protocol round
(LOGIN1, SWITCH2, KEYPUSH), a whole client operation (LOGIN), one RPC
exchange, or a server-side handler body.  Spans link into trees via
``(trace_id, span_id, parent_id)`` -- the Dapper model -- and carry a
three-way time split alongside the wall (virtual) duration:

* ``queue_time``   -- waited in a farm's FIFO queue;
* ``service_time`` -- charged against a farm server;
* ``network_time`` -- one-way WAN/link delays.

All clocks are *virtual*: the tracer reads the discrete-event engine's
``sim.now`` through an injected ``clock`` callable, so traces recorded
from a storm that simulates hours finish in milliseconds of wall time
and are bit-for-bit deterministic under a fixed seed.

The tracer keeps an explicit context *stack* rather than thread-local
state: the simulation is single-threaded, and handlers run to
completion inside the engine, so pushing an RPC span's context around
the handler call is enough to parent everything the handler does.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import ReproError


class TraceError(ReproError):
    """Misuse of the tracing subsystem (unbalanced stack, bad file)."""


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span: what crosses an RPC hop."""

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None


@dataclass
class Span:
    """One recorded interval in a trace tree."""

    name: str
    kind: str
    trace_id: int
    span_id: int
    parent_id: Optional[int]
    start: float
    end: Optional[float] = None
    queue_time: float = 0.0
    service_time: float = 0.0
    network_time: float = 0.0
    annotations: Dict[str, Any] = field(default_factory=dict)

    @property
    def context(self) -> TraceContext:
        """This span's identity, for propagation to children."""
        return TraceContext(self.trace_id, self.span_id, self.parent_id)

    @property
    def duration(self) -> Optional[float]:
        """Virtual seconds from start to finish; None while open."""
        if self.end is None:
            return None
        return self.end - self.start

    def annotate(self, key: str, value: Any) -> None:
        """Attach one key/value fact to the span."""
        self.annotations[key] = value

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "queue_time": self.queue_time,
            "service_time": self.service_time,
            "network_time": self.network_time,
            "annotations": self.annotations,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "Span":
        try:
            return Span(
                name=data["name"],
                kind=data["kind"],
                trace_id=data["trace_id"],
                span_id=data["span_id"],
                parent_id=data["parent_id"],
                start=data["start"],
                end=data["end"],
                queue_time=data.get("queue_time", 0.0),
                service_time=data.get("service_time", 0.0),
                network_time=data.get("network_time", 0.0),
                annotations=data.get("annotations", {}),
            )
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed span record: {exc}") from None


#: Sentinel distinguishing "no parent given, inherit the stack" from an
#: explicit ``parent=None`` ("force a new root").
_INHERIT = object()


class Tracer:
    """Records spans against a virtual clock.

    ``clock`` is a zero-argument callable returning the current virtual
    time (typically ``lambda: sim.now``).  Components that know the
    time pass ``now`` explicitly and never consult the clock; the clock
    is the fallback for call sites without a ``now`` in scope (e.g.
    :meth:`RedirectionManager.lookup`).
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 200_000,
    ) -> None:
        self.clock = clock
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_trace_id = 1
        self._next_span_id = 1
        self._stack: List[TraceContext] = []

    # ------------------------------------------------------------------
    # clocks and context stack
    # ------------------------------------------------------------------

    def now(self, fallback: Optional[float] = None) -> float:
        """Explicit time wins; else the clock; else 0.0."""
        if fallback is not None:
            return fallback
        if self.clock is not None:
            return self.clock()
        return 0.0

    @property
    def current(self) -> Optional[TraceContext]:
        """The innermost active context, if any."""
        return self._stack[-1] if self._stack else None

    def push(self, context: TraceContext) -> None:
        self._stack.append(context)

    def pop(self) -> TraceContext:
        if not self._stack:
            raise TraceError("context stack underflow")
        return self._stack.pop()

    @contextmanager
    def using(self, context: TraceContext) -> Iterator[TraceContext]:
        """Make ``context`` the ambient parent for the body's spans.

        This is how a *resumed* context (one that crossed an RPC hop or
        a retransmission timer) is reinstated without opening a new
        span.
        """
        self.push(context)
        try:
            yield context
        finally:
            self.pop()

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------

    def start_span(
        self,
        name: str,
        now: Optional[float] = None,
        parent: Any = _INHERIT,
        kind: str = "span",
    ) -> Span:
        """Open a span.

        ``parent`` defaults to the innermost stacked context; pass an
        explicit :class:`TraceContext` to parent across an async hop,
        or ``None`` to force a new trace root.
        """
        if parent is _INHERIT:
            parent = self.current
        if parent is None:
            trace_id = self._next_trace_id
            self._next_trace_id += 1
            parent_id: Optional[int] = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(
            name=name,
            kind=kind,
            trace_id=trace_id,
            span_id=self._next_span_id,
            parent_id=parent_id,
            start=self.now(now),
        )
        self._next_span_id += 1
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            # Over budget: the span still works as a causal parent but
            # is not retained, so a runaway storm degrades to partial
            # traces instead of unbounded memory.
            self.dropped += 1
        return span

    def finish(self, span: Span, now: Optional[float] = None) -> None:
        """Close a span; idempotent (first close wins)."""
        if span.end is None:
            span.end = self.now(now)

    @contextmanager
    def span(
        self,
        name: str,
        now: Optional[float] = None,
        kind: str = "span",
        parent: Any = _INHERIT,
        **annotations: Any,
    ) -> Iterator[Span]:
        """Open a span, make it the ambient parent, close on exit.

        An exception escaping the body is annotated (``error`` = the
        exception class name) and re-raised; the span still closes, so
        denial paths show up in the tree rather than vanishing.
        """
        opened = self.start_span(name, now=now, parent=parent, kind=kind)
        opened.annotations.update(annotations)
        self.push(opened.context)
        try:
            yield opened
        except Exception as exc:
            opened.annotations["error"] = type(exc).__name__
            raise
        finally:
            self.pop()
            self.finish(opened, now=self.now(now))

    # ------------------------------------------------------------------
    # inspection and persistence
    # ------------------------------------------------------------------

    def traces(self) -> Dict[int, List[Span]]:
        """Spans grouped by trace id, in recording order."""
        grouped: Dict[int, List[Span]] = {}
        for span in self.spans:
            grouped.setdefault(span.trace_id, []).append(span)
        return grouped

    def reset(self) -> None:
        """Drop all recorded spans (id counters keep advancing)."""
        self.spans = []
        self.dropped = 0
        self._stack = []

    def snapshot(self) -> Dict[str, int]:
        """Counters for the metrics registry."""
        open_spans = sum(1 for s in self.spans if s.end is None)
        return {
            "spans": len(self.spans),
            "open_spans": open_spans,
            "traces": len({s.trace_id for s in self.spans}),
            "dropped": self.dropped,
        }

    def save(self, path: str) -> int:
        """Write the buffer as JSON lines; returns the span count."""
        with open(path, "w", encoding="utf-8") as handle:
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
        return len(self.spans)


def load_spans(path: str) -> List[Span]:
    """Read a JSONL trace buffer written by :meth:`Tracer.save`."""
    spans: List[Span] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"{path}:{line_no}: not JSON: {exc}") from None
            spans.append(Span.from_dict(data))
    return spans


@contextmanager
def maybe_span(
    tracer: Optional[Tracer],
    name: str,
    now: Optional[float] = None,
    kind: str = "span",
    **annotations: Any,
) -> Iterator[Optional[Span]]:
    """A span when tracing is on, a no-op when it is off.

    Instrumented components hold ``self.tracer = None`` by default, so
    the untraced hot path costs one ``None`` check.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, now=now, kind=kind, **annotations) as opened:
        yield opened

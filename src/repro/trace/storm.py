"""A traced switch storm: the tracing layer's standard workload.

Drives a small fleet of :class:`~repro.sim.driver.AsyncClient` viewers
through login -> switch -> ticket renewal over the virtual network while
a synchronous overlay carries key pushes, all under one shared
:class:`~repro.trace.span.Tracer` whose clock is the simulator.  The
result is a span buffer exercising every protocol round the paper
describes -- the fixture behind ``repro trace storm``, the CI smoke
test, and the trace-report tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List

from repro.deployment import Deployment
from repro.crypto.drbg import HmacDrbg
from repro.sim.driver import AsyncClient, wire_channel_manager, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork
from repro.sim.station import ServiceStation
from repro.trace.span import Tracer

UM_ADDR = "rpc://um"
CM_ADDR = "rpc://cm"

#: Renewal kicks off this long before Channel Ticket expiry.
RENEW_LEAD = 48.0


@dataclass
class StormResult:
    """Everything a caller might want to inspect after the storm."""

    tracer: Tracer
    deployment: Deployment
    sim: Simulator
    #: Completed operations by name (LOGIN/SWITCH/RENEWAL/...).
    counts: Dict[str, int] = field(default_factory=dict)
    errors: List[Exception] = field(default_factory=list)


def run_switch_storm(
    clients: int = 6,
    seed: int = 17,
    channel: str = "storm",
    horizon: float = 900.0,
    tracer: Tracer = None,
) -> StormResult:
    """Run the traced storm; returns the populated tracer and rig.

    ``horizon`` must stretch past the renewal point (the Channel
    Ticket lifetime is the deployment default, 900 s) for RENEWAL
    spans to appear.
    """
    deployment = Deployment(seed=seed)
    deployment.add_free_channel(channel, regions=["CH"])
    sim = Simulator()
    if tracer is None:
        tracer = Tracer(clock=lambda: sim.now)
    deployment.enable_tracing(tracer)

    rng = random.Random(seed)
    latency = LatencyModel(
        random.Random(rng.randrange(2**63)),
        table={("CH", "dc"): RegionRtt(base_rtt=0.08, sigma=0.01, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(rng.randrange(2**63)))
    network.tracer = tracer
    um_station = ServiceStation(sim, 2, 0.005, random.Random(rng.randrange(2**63)), name="um")
    cm_station = ServiceStation(sim, 2, 0.005, random.Random(rng.randrange(2**63)), name="cm")
    wire_user_manager(
        network, deployment.user_managers["domain-0"], UM_ADDR, station=um_station
    )
    wire_channel_manager(
        network, deployment.channel_manager_for(channel), CM_ADDR, station=cm_station
    )

    result = StormResult(tracer=tracer, deployment=deployment, sim=sim)

    def bump(name: str):
        def record(*_args) -> None:
            result.counts[name] = result.counts.get(name, 0) + 1

        return record

    def on_fail(exc: Exception) -> None:
        result.errors.append(exc)

    renew_at = deployment.channel_ticket_lifetime - RENEW_LEAD
    fleet: List[AsyncClient] = []
    for index in range(clients):
        email = f"storm{index}@example.org"
        deployment.accounts.register(email, "pw")
        viewer = AsyncClient(
            network=network,
            email=email,
            password="pw",
            version=deployment.client_version,
            image=deployment.client_image,
            net_addr=deployment.geo.random_address("CH", deployment.rng),
            region="CH",
            drbg=HmacDrbg(email.encode(), b"storm"),
            tracer=tracer,
        )
        fleet.append(viewer)

        def kickoff(sim_, viewer=viewer, index=index):
            def switched(response) -> None:
                bump("SWITCH")(response)

            def logged_in() -> None:
                bump("LOGIN")()
                viewer.start_switch(CM_ADDR, channel, on_done=switched, on_fail=on_fail)

            viewer.start_login(UM_ADDR, on_done=logged_in, on_fail=on_fail)

        def renew(sim_, viewer=viewer):
            if viewer.channel_ticket is None:
                return
            viewer.start_renewal(CM_ADDR, on_done=bump("RENEWAL"), on_fail=on_fail)

        sim.schedule(0.5 * index, kickoff)
        if horizon > renew_at:
            sim.schedule(renew_at + 0.5 * index, renew)

    # A small synchronous overlay alongside the RPC fleet: two viewers
    # join the tree, then the source ticks push rotating keys down it
    # (JOIN / KEYPUSH spans with real parent-child cascades).
    def setup_overlay(sim_) -> None:
        now = sim_.now
        for index in range(2):
            sync_client = deployment.create_client(
                f"overlay{index}@example.org", "pw", region="CH"
            )
            sync_client.login(now=now)
            deployment.watch(sync_client, channel, now=now)
            result.counts["JOIN"] = result.counts.get("JOIN", 0) + 1

    sim.schedule(5.0, setup_overlay)
    source = deployment.overlay(channel).source
    epoch = deployment.server(channel).schedule.epoch
    push_at = epoch - 5.0
    while push_at < min(horizon, 3 * epoch):
        sim.schedule(push_at, lambda sim_: source.tick(sim_.now))
        push_at += epoch

    sim.run(until=horizon)
    return result

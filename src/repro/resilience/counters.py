"""Shared counters for the resilience layer.

One mutable block, threaded by reference into every retry loop,
breaker, and degraded-mode transition of a deployment -- the same
idiom as :mod:`repro.metrics.hotpath`.  The chaos suite's
counter-consistency invariants are stated over these fields:

* every transport failure lands in exactly one of ``timeouts`` /
  ``drops`` / ``pool_exhausted``;
* every such failure is answered by exactly one of ``retries`` /
  ``giveups``;
* ``breaker_opens >= breaker_closes`` (a breaker can only close after
  opening);
* after a run is finalized, ``degraded_entries == degraded_exits``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ResilienceCounters:
    """Counter block for retries, breakers, failover, degraded mode."""

    #: Transport-failure classification (one per failed attempt).
    timeouts: int = 0
    drops: int = 0
    pool_exhausted: int = 0
    #: Response classification (one per failed attempt).
    retries: int = 0
    giveups: int = 0
    #: Breaker state-machine transitions.
    breaker_opens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    breaker_rejections: int = 0
    #: Attempts steered away from the primary replica.
    failovers: int = 0
    #: Degraded viewing mode (valid ticket, unreachable Channel Manager).
    degraded_entries: int = 0
    degraded_exits: int = 0
    degraded_seconds: float = 0.0
    #: Episodes where the Channel Ticket expired while degraded --
    #: playback actually stopped (the paper's hard-stop).
    playback_interruptions: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, type(getattr(self, name))())

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

"""Per-endpoint circuit breaker.

State machine (DESIGN.md section 10 has the diagram)::

    CLOSED --(failure_threshold consecutive transport failures)--> OPEN
    OPEN   --(reset_timeout elapses; next allow() admits a probe)--> HALF_OPEN
    HALF_OPEN --(probe succeeds)--> CLOSED
    HALF_OPEN --(probe fails)----> OPEN (cooldown restarts)

Only *transport* failures feed the breaker -- protocol rejections are
replies from a live server and prove the endpoint healthy.  While OPEN
every ``allow()`` is rejected without touching the network, which is
what lets a client skip a dead replica's timeout and go straight to
the next one in its :class:`~repro.resilience.endpoints.EndpointPool`.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.errors import SimulationError
from repro.resilience.counters import ResilienceCounters


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Trips on consecutive transport failures; half-opens on a probe.

    HALF_OPEN admits exactly one in-flight probe: concurrent callers
    are rejected until the probe's outcome lands, so a flapping
    endpoint sees one request per cooldown, not a thundering herd.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        counters: Optional[ResilienceCounters] = None,
        name: str = "",
    ) -> None:
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if reset_timeout <= 0.0:
            raise SimulationError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.counters = counters or ResilienceCounters()
        self.name = name
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self._probe_in_flight = False

    def allow(self, now: float) -> bool:
        """May a request go to this endpoint right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if self.opened_at is not None and now - self.opened_at >= self.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                self._probe_in_flight = True
                self.counters.breaker_half_opens += 1
                return True
            self.counters.breaker_rejections += 1
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_in_flight:
            self.counters.breaker_rejections += 1
            return False
        self._probe_in_flight = True
        return True

    def record_success(self, now: float) -> None:
        """The endpoint answered: close (if open) and reset the count."""
        self._probe_in_flight = False
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self.state = BreakerState.CLOSED
            self.opened_at = None
            self.counters.breaker_closes += 1

    def record_failure(self, now: float) -> None:
        """A transport failure: count it; trip or re-trip as needed."""
        self._probe_in_flight = False
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            # The probe failed: back to OPEN, cooldown restarts.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.counters.breaker_opens += 1
            return
        if (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.counters.breaker_opens += 1

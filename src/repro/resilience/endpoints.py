"""Ordered endpoint pools: replica failover driven by breakers.

A pool holds a manager farm's replica addresses in preference order
(the Redirection Manager's registered order) with one
:class:`~repro.resilience.breaker.CircuitBreaker` per address.
:meth:`EndpointPool.pick` returns the first replica whose breaker
admits a request -- so a client sticks to the primary while it is
healthy, slides to the next replica when the primary's breaker opens,
and drifts back when the primary's half-open probe succeeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import SimulationError
from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.counters import ResilienceCounters


class EndpointPool:
    """Replica addresses in preference order, each behind a breaker."""

    def __init__(
        self,
        addresses: Iterable[str],
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        counters: Optional[ResilienceCounters] = None,
    ) -> None:
        self.addresses: List[str] = list(addresses)
        if not self.addresses:
            raise SimulationError("endpoint pool needs at least one address")
        if len(set(self.addresses)) != len(self.addresses):
            raise SimulationError("duplicate address in endpoint pool")
        self._breakers: Dict[str, CircuitBreaker] = {
            address: CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout=reset_timeout,
                counters=counters,
                name=address,
            )
            for address in self.addresses
        }

    @property
    def primary(self) -> str:
        return self.addresses[0]

    def breaker(self, address: str) -> CircuitBreaker:
        try:
            return self._breakers[address]
        except KeyError:
            raise SimulationError(f"address not in pool: {address}") from None

    def pick(self, now: float) -> Optional[str]:
        """First replica whose breaker admits a request; None if all
        are open (the caller backs off and re-picks later)."""
        for address in self.addresses:
            if self._breakers[address].allow(now):
                return address
        return None

    def record_success(self, address: str, now: float) -> None:
        self.breaker(address).record_success(now)

    def record_failure(self, address: str, now: float) -> None:
        self.breaker(address).record_failure(now)

    def states(self) -> Dict[str, BreakerState]:
        """Current breaker state per address (for reports/tests)."""
        return {a: b.state for a, b in self._breakers.items()}

"""Retry policies: exponential backoff, deterministic jitter, deadlines.

A :class:`RetryPolicy` is a frozen value object; :meth:`RetryPolicy.delays`
turns it into a concrete backoff sequence using a caller-supplied
``random.Random`` -- in simulations that RNG is seeded from the sim
seed, so every backoff sequence is reproducible.

The generated sequence satisfies three properties (enforced by the
hypothesis suite in ``tests/resilience/test_retry_properties.py``):

* **monotone**: each delay is >= the previous one, up to ``max_delay``
  (jitter is clamped so it can stretch a step but never shrink the
  sequence below an earlier value);
* **budgeted**: the cumulative sum of yielded delays never exceeds
  ``deadline`` when one is set;
* **deterministic**: the same policy and an equally-seeded RNG yield
  the identical sequence.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import SimulationError, TransportError


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with multiplicative jitter and a hard cap.

    ``max_attempts`` counts *attempts*, not retries: a policy with
    ``max_attempts=4`` yields at most three delays.  ``jitter`` is the
    maximum fractional stretch applied to each step (0.1 = up to +10%).
    ``deadline``, when set, bounds the *total* backoff the sequence may
    spend -- a delay that would push the cumulative sum past it ends
    the sequence early.
    """

    base_delay: float = 1.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    max_attempts: int = 8
    jitter: float = 0.1
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_delay <= 0.0:
            raise SimulationError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise SimulationError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise SimulationError("max_delay must be >= base_delay")
        if self.max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise SimulationError("jitter must be in [0, 1]")
        if self.deadline is not None and self.deadline < 0.0:
            raise SimulationError("deadline must be non-negative")

    def delays(self, rng: random.Random) -> Iterator[float]:
        """Generate the backoff sequence for one operation.

        Yields at most ``max_attempts - 1`` delays.  The monotone
        clamp -- ``max(previous, jittered)`` before the cap -- keeps
        the sequence non-decreasing even when a large jitter draw on
        step *k* exceeds the un-jittered value of step *k+1*.
        """
        previous = 0.0
        total = 0.0
        for attempt in range(self.max_attempts - 1):
            raw = min(self.base_delay * self.multiplier ** attempt, self.max_delay)
            jittered = raw * (1.0 + self.jitter * rng.random())
            delay = min(self.max_delay, max(previous, jittered))
            if self.deadline is not None and total + delay > self.deadline:
                return
            total += delay
            previous = delay
            yield delay

    @staticmethod
    def is_retryable(exc: Exception) -> bool:
        """Transport failures retry; protocol replies never do.

        A policy REJECT, a bad nonce, or an expired ticket is an
        *answer* -- retrying it hammers a healthy server with a request
        it already refused.  Only :class:`~repro.errors.TransportError`
        (timeout, drop, unresolvable address) means "the message may
        simply not have arrived".
        """
        return isinstance(exc, TransportError)


@dataclass(frozen=True)
class Deadline:
    """An absolute give-up time for a whole operation."""

    expires_at: float

    @classmethod
    def after(cls, now: float, budget: float) -> "Deadline":
        if budget < 0.0:
            raise SimulationError("deadline budget must be non-negative")
        return cls(expires_at=now + budget)

    def remaining(self, now: float) -> float:
        return max(0.0, self.expires_at - now)

    def exceeded(self, now: float) -> bool:
        return now >= self.expires_at

"""Failure-domain survival: retries, breakers, failover, degraded mode.

The paper's backend ran live at Zattoo, where manager crashes, slow
farms, and partitions are routine.  This package supplies the client
side of surviving them:

* :class:`RetryPolicy` / :class:`Deadline` -- exponential backoff with
  deterministic jitter drawn from the sim RNG, bounded by a cap and an
  optional total-delay budget;
* :class:`CircuitBreaker` / :class:`EndpointPool` -- per-endpoint trip
  on consecutive transport failures, half-open probing, and ordered
  replica failover;
* :class:`ResilienceCounters` -- the shared counter block surfaced via
  :class:`~repro.metrics.registry.MetricsRegistry`;
* :class:`ResilientAsyncClient` -- an :class:`~repro.sim.driver.AsyncClient`
  that wraps every protocol round in retry + failover and implements
  the degraded viewing mode grounded in the paper's renewal-bit
  semantics (Section IV-D).
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.client import ResilientAsyncClient
from repro.resilience.counters import ResilienceCounters
from repro.resilience.endpoints import EndpointPool
from repro.resilience.retry import Deadline, RetryPolicy

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "EndpointPool",
    "ResilienceCounters",
    "ResilientAsyncClient",
    "RetryPolicy",
]

"""A viewer that survives manager failures.

:class:`ResilientAsyncClient` layers the resilience machinery over
:class:`~repro.sim.driver.AsyncClient`: every protocol operation
(LOGIN, SWITCH, RENEWAL) runs under a :class:`RetryPolicy`, picks its
endpoint from an :class:`EndpointPool` (failing over when a breaker
opens), and emits ``kind="resilience"`` tracer spans (RETRY, FAILOVER,
DEGRADED.ENTER/EXIT) so a chaos run can be audited span by span.

**Degraded viewing mode** (the tentpole's part c) is grounded in the
paper's renewal-bit semantics, Section IV-D: the Channel Ticket a
viewer already holds is self-contained proof of entitlement until its
expire time, and content keys arrive over the P2P overlay, not from
the Channel Manager.  So when the CM becomes unreachable the client
*keeps decrypting* -- it merely cannot renew.  It re-enters the
renewal loop with backoff and accounts the outage:

* time between the first failed renewal attempt and recovery, while
  the ticket is still valid, accrues to ``degraded_seconds`` -- the
  viewer noticed nothing;
* if the ticket expires before a renewal lands, playback hard-stops:
  the episode counts one ``playback_interruption`` and the post-expiry
  tail accrues to ``interruption_seconds``.

A renewal *refused* by a live CM (protocol reply, e.g. the one-
viewing-location rule or a missed renewal window) is never retried as
a renewal; the client falls back to a fresh SWITCH, which re-runs the
full policy evaluation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Callable, Iterable, Optional

from repro.errors import (
    AuthorizationError,
    RpcDropError,
    RpcTimeoutError,
    TransportError,
)
from repro.resilience.counters import ResilienceCounters
from repro.resilience.endpoints import EndpointPool
from repro.resilience.retry import RetryPolicy
from repro.sim.driver import AsyncClient


class ResilientAsyncClient(AsyncClient):
    """An AsyncClient with retry, failover, and degraded viewing mode."""

    def __init__(
        self,
        *,
        um_addresses: Iterable[str],
        cm_addresses: Iterable[str],
        retry: Optional[RetryPolicy] = None,
        counters: Optional[ResilienceCounters] = None,
        rng: Optional[random.Random] = None,
        breaker_threshold: int = 3,
        breaker_reset: float = 30.0,
        renew_lead: float = 60.0,
        round_timeout: Optional[float] = 8.0,
        **kwargs,
    ) -> None:
        super().__init__(round_timeout=round_timeout, **kwargs)
        self.retry = retry or RetryPolicy()
        self.counters = counters or ResilienceCounters()
        # str.hash() is salted per process; derive the fallback jitter
        # seed stably so identical runs produce identical backoff.
        self._rng = rng or random.Random(
            int.from_bytes(
                hashlib.sha256(self.email.encode("utf-8")).digest()[:8], "big"
            )
        )
        self.um_pool = EndpointPool(
            um_addresses, breaker_threshold, breaker_reset, self.counters
        )
        self.cm_pool = EndpointPool(
            cm_addresses, breaker_threshold, breaker_reset, self.counters
        )
        self.renew_lead = renew_lead
        self.channel: Optional[str] = None
        #: Per-client outcome tallies (the shared ``counters`` block
        #: aggregates the same events deployment-wide).
        self.retries = 0
        self.giveups = 0
        self.failovers = 0
        self.degraded_seconds = 0.0
        self.interruptions = 0
        self.interruption_seconds = 0.0
        self._degraded_since: Optional[float] = None
        self._degraded_expiry: Optional[float] = None

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------

    def _event(self, name: str, **attrs) -> None:
        """Record a zero-duration resilience event as a span."""
        if self.tracer is None:
            return
        now = self._network.sim.now
        span = self.tracer.start_span(name, now=now, kind="resilience")
        span.annotate("client", self.email)
        for key, value in attrs.items():
            span.annotate(key, value)
        self.tracer.finish(span, now=now)

    @property
    def degraded(self) -> bool:
        return self._degraded_since is not None

    def playback_active(self, now: float) -> bool:
        """Is the viewer decrypting right now?

        True while a Channel Ticket is held and unexpired -- including
        degraded mode, where the CM is unreachable but the ticket (and
        the overlay's key feed) keep playback alive.
        """
        return self.channel_ticket is not None and now <= self.channel_ticket.expire_time

    # ------------------------------------------------------------------
    # The retry/failover engine
    # ------------------------------------------------------------------

    def _run_op(
        self,
        op_name: str,
        pool: EndpointPool,
        attempt_fn: Callable[[str, Callable, Callable[[Exception], None]], None],
        on_done: Callable,
        on_fail: Callable[[Exception], None],
        on_first_failure: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Run one logical operation with retry + failover.

        ``attempt_fn(address, done, fail)`` issues a single attempt
        against ``address``.  Retryable (transport) failures feed the
        endpoint's breaker and consume a backoff step; protocol
        rejections count as endpoint *successes* (the server answered)
        and abort the loop immediately.
        """
        sim = self._network.sim
        state = {"attempt": 0, "delays": self.retry.delays(self._rng),
                 "failed_once": False}
        primary = pool.primary

        def back_off(exc: Exception) -> None:
            if not state["failed_once"]:
                state["failed_once"] = True
                if on_first_failure is not None:
                    on_first_failure(exc)
            delay = next(state["delays"], None)
            if delay is None:
                self.counters.giveups += 1
                self.giveups += 1
                self._event("GIVEUP", op=op_name, attempts=state["attempt"],
                            error=type(exc).__name__)
                on_fail(exc)
                return
            self.counters.retries += 1
            self.retries += 1
            self._event("RETRY", op=op_name, attempt=state["attempt"],
                        error=type(exc).__name__, delay=delay)
            sim.schedule(delay, lambda _sim: attempt())

        def attempt() -> None:
            state["attempt"] += 1
            address = pool.pick(sim.now)
            if address is None:
                self.counters.pool_exhausted += 1
                back_off(RpcDropError(
                    op_name, "<pool>", "all endpoints circuit-broken"))
                return
            if address != primary:
                self.counters.failovers += 1
                self.failovers += 1
                self._event("FAILOVER", op=op_name, endpoint=address,
                            attempt=state["attempt"])

            def done(*result) -> None:
                pool.record_success(address, sim.now)
                on_done(*result)

            def fail(exc: Exception) -> None:
                if not RetryPolicy.is_retryable(exc):
                    # A reply from a live server: the endpoint is
                    # healthy even though the request was refused.
                    pool.record_success(address, sim.now)
                    on_fail(exc)
                    return
                if isinstance(exc, RpcTimeoutError):
                    self.counters.timeouts += 1
                else:
                    self.counters.drops += 1
                pool.record_failure(address, sim.now)
                back_off(exc)

            attempt_fn(address, done, fail)

        attempt()

    # ------------------------------------------------------------------
    # Resilient protocol operations
    # ------------------------------------------------------------------

    def start_resilient_login(
        self,
        on_done: Callable[[], None],
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        self._run_op(
            "LOGIN",
            self.um_pool,
            lambda address, done, fail: self.start_login(
                address, on_done=done, on_fail=fail
            ),
            on_done,
            on_fail or (lambda exc: None),
        )

    def start_resilient_switch(
        self,
        channel_id: str,
        on_done: Callable,
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        self._run_op(
            "SWITCH",
            self.cm_pool,
            lambda address, done, fail: self.start_switch(
                address, channel_id, on_done=done, on_fail=fail
            ),
            on_done,
            on_fail or (lambda exc: None),
        )

    # ------------------------------------------------------------------
    # The viewing loop: watch -> renew forever, degrading gracefully
    # ------------------------------------------------------------------

    def watch(
        self,
        channel_id: str,
        on_fail: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Login, switch to ``channel_id``, and keep the ticket renewed.

        The renewal loop continues until the simulation ends; failures
        along the way degrade (or, past ticket expiry, interrupt) the
        session rather than abandoning it.
        """
        self.channel = channel_id

        def switched(_response) -> None:
            self._schedule_renewal()

        def logged_in() -> None:
            self.start_resilient_switch(channel_id, switched, on_fail)

        self.start_resilient_login(logged_in, on_fail)

    def _schedule_renewal(self) -> None:
        sim = self._network.sim
        renew_at = self.channel_ticket.expire_time - self.renew_lead
        delay = max(0.0, renew_at - sim.now)
        sim.schedule(delay, lambda _sim: self._renew_now())

    def _renew_now(self) -> None:
        if self.channel_ticket is None or self.channel is None:
            return
        sim = self._network.sim

        def done(_response) -> None:
            self._exit_degraded(sim.now)
            self._schedule_renewal()

        def first_failure(_exc: Exception) -> None:
            self._enter_degraded(sim.now)

        def fail(exc: Exception) -> None:
            if isinstance(exc, TransportError):
                # The whole backoff sequence burned without reaching
                # any CM replica.  The ticket (if still valid) keeps
                # playback alive; park at the policy's cap and try the
                # renewal again -- breakers half-open in the meantime.
                sim.schedule(
                    self.retry.max_delay, lambda _sim: self._renew_now()
                )
                return
            if isinstance(exc, AuthorizationError):
                # A live CM refused the renewal (window missed while
                # degraded, or the one-location rule).  Renewing again
                # is pointless; a fresh SWITCH re-runs policy and --
                # if this viewer is entitled -- re-admits it.
                self._event("RENEWAL.REFUSED", error=type(exc).__name__)
                self._fresh_switch()
                return
            # Anything else is a bug surfaced by the protocol layer;
            # leave it in self.errors (AsyncClient recorded it).

        self._run_op(
            "RENEWAL",
            self.cm_pool,
            lambda address, done_, fail_: self.start_renewal(
                address, on_done=done_, on_fail=fail_
            ),
            done,
            fail,
            on_first_failure=first_failure,
        )

    def _fresh_switch(self) -> None:
        sim = self._network.sim

        def done(_response) -> None:
            self._exit_degraded(sim.now)
            self._schedule_renewal()

        def fail(exc: Exception) -> None:
            if isinstance(exc, TransportError):
                sim.schedule(
                    self.retry.max_delay, lambda _sim: self._fresh_switch()
                )

        self.start_resilient_switch(self.channel, done, fail)

    # ------------------------------------------------------------------
    # Degraded-mode accounting
    # ------------------------------------------------------------------

    def _enter_degraded(self, now: float) -> None:
        if self._degraded_since is not None:
            return
        self._degraded_since = now
        self._degraded_expiry = (
            self.channel_ticket.expire_time
            if self.channel_ticket is not None
            else now
        )
        self.counters.degraded_entries += 1
        self._event("DEGRADED.ENTER", expires_at=self._degraded_expiry)

    def _exit_degraded(self, now: float) -> None:
        if self._degraded_since is None:
            return
        start = self._degraded_since
        expiry = self._degraded_expiry
        if now <= expiry:
            span = now - start
            self.degraded_seconds += span
            self.counters.degraded_seconds += span
        else:
            # The ticket ran out mid-outage: degraded until expiry,
            # hard-stopped after -- the paper's semantics exactly.
            span = max(0.0, expiry - start)
            self.degraded_seconds += span
            self.counters.degraded_seconds += span
            self.interruption_seconds += now - max(expiry, start)
            self.interruptions += 1
            self.counters.playback_interruptions += 1
        self.counters.degraded_exits += 1
        self._event(
            "DEGRADED.EXIT",
            degraded_for=now - start,
            interrupted=now > expiry,
        )
        self._degraded_since = None
        self._degraded_expiry = None

    def finalize(self, now: float) -> None:
        """Flush an open degraded interval at end of run.

        Chaos rigs call this at the horizon so ``degraded_seconds`` /
        interruption tallies cover outages still in progress when the
        simulation stops.
        """
        self._exit_degraded(now)

"""Centralized key distribution baseline (related-work style, ref [18]).

The semi-distributed P2P-IPTV DRM architectures the paper cites keep
"license and key distributions ... centralized": every client fetches
each rotating content key from a key server.  With an N-client
audience and a T-second re-key interval the server absorbs N requests
every T seconds, *synchronized* (everyone needs the new key before the
same activation instant) -- a periodic flash crowd.

The paper's design instead pushes each key down the overlay pair-wise:
each peer performs one symmetric re-encryption per child, so the
infrastructure cost is O(source fan-out) per re-key regardless of N.

:class:`KeyDistributionComparison` quantifies both sides for ablation
A2: server request load and client key-arrival timeliness vs audience
size.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Simulator
from repro.sim.station import ServiceStation


@dataclass
class CentralKeyServer:
    """A key server absorbing one synchronized re-key request storm.

    ``n_servers`` and ``service_time`` define capacity; clients all
    wake within ``stagger`` seconds of the key release (clients jitter
    their fetches to avoid perfect synchronization -- the standard
    mitigation, which only spreads, never removes, the load).
    """

    n_servers: int
    service_time: float = 0.002
    stagger: float = 5.0

    def rekey_storm(self, rng: random.Random, clients: int) -> "StormResult":
        """Simulate one re-key: every client fetches the new key."""
        sim = Simulator()
        station = ServiceStation(
            sim,
            n_servers=self.n_servers,
            mean_service_time=self.service_time,
            rng=rng,
            name="key-server",
        )
        waits: List[float] = []
        for _ in range(clients):
            offset = rng.uniform(0.0, self.stagger)
            sim.schedule_at(
                offset,
                lambda s, st=station: st.submit(
                    on_complete=lambda _s, sojourn: waits.append(sojourn)
                ),
            )
        sim.run()
        waits.sort()
        n = len(waits)
        return StormResult(
            clients=clients,
            server_requests=clients,
            mean_wait=sum(waits) / n if n else 0.0,
            p99_wait=waits[int(0.99 * (n - 1))] if n else 0.0,
            max_wait=waits[-1] if n else 0.0,
        )


@dataclass
class StormResult:
    """Per-re-key load and delay at the central key server."""

    clients: int
    server_requests: int
    mean_wait: float
    p99_wait: float
    max_wait: float


@dataclass
class PushResult:
    """Per-re-key cost of the paper's P2P push for the same audience."""

    clients: int
    server_messages: int  # messages the *infrastructure* sends
    total_link_messages: int  # messages anywhere in the overlay
    tree_depth: int
    propagation_p99: float  # time for the key to reach the deepest peers


class KeyDistributionComparison:
    """Central fetch vs P2P push, matched audience and re-key interval."""

    def __init__(
        self,
        rng: random.Random,
        fanout: int = 4,
        hop_latency: float = 0.040,
        reencrypt_time: float = 0.0002,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        self._rng = rng
        self.fanout = fanout
        self.hop_latency = hop_latency
        self.reencrypt_time = reencrypt_time

    def p2p_push(self, clients: int, source_fanout: int = 16) -> PushResult:
        """Analytic cost of one pushed re-key through a balanced tree.

        Every peer (and the source) sends one message per child; the
        tree has ``clients`` nodes below the source.  Propagation time
        to depth d is d hops of (latency + per-child re-encryption).
        """
        if clients <= 0:
            return PushResult(clients=0, server_messages=0, total_link_messages=0, tree_depth=0, propagation_p99=0.0)
        # Depth of a balanced tree: source fans to source_fanout, then
        # each peer fans to self.fanout.
        remaining = clients - min(clients, source_fanout)
        depth = 1
        level = min(clients, source_fanout)
        while remaining > 0:
            level *= self.fanout
            taken = min(remaining, level)
            remaining -= taken
            depth += 1
        per_hop = self.hop_latency + self.fanout * self.reencrypt_time
        return PushResult(
            clients=clients,
            server_messages=min(clients, source_fanout),
            total_link_messages=clients,  # every peer has exactly one inbound key message per parent link (single-parent tree)
            tree_depth=depth,
            propagation_p99=depth * per_hop,
        )

    def central_fetch(self, clients: int, n_servers: int) -> StormResult:
        """One synchronized fetch storm at the central server."""
        server = CentralKeyServer(n_servers=n_servers)
        return server.rekey_storm(self._rng, clients)

    def crossover_audience(self, n_servers: int, sla: float = 1.0) -> int:
        """Audience size where the central server's p99 wait breaks the SLA.

        Binary search over audience size; the P2P push never breaks it
        (its propagation depends on depth ~ log N).
        """
        low, high = 1, 2
        while self.central_fetch(high, n_servers).p99_wait <= sla:
            high *= 2
            if high >= 2**20:
                return high
        while low < high:
            mid = (low + high) // 2
            if self.central_fetch(mid, n_servers).p99_wait <= sla:
                low = mid + 1
            else:
                high = mid
        return low

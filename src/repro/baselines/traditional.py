"""Traditional per-file DRM baseline: the License Manager.

Section I: "In traditional DRM, each client is required to acquire a
separate playback license for each file.  The acquisition of playback
license usually occurs right before the playing back of a file."  For
a live event with correlated arrivals this concentrates the entire
audience's license acquisitions into the event's first moments, so the
License Manager must be provisioned for the flash-crowd peak, not the
average.

:class:`LicenseManager` is a functional license server (issue /
validate, per-device limits, playback counts), and
:class:`TraditionalDrmSimulation` runs a flash crowd through a
License Manager service station to measure the queueing delay a given
provisioning level produces -- the baseline curve for ablation A3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.errors import AuthorizationError, SignatureError
from repro.sim.engine import Simulator
from repro.sim.station import ServiceStation
from repro.util.wire import Encoder


@dataclass(frozen=True)
class License:
    """A per-file playback license.

    Carries the decryption key for exactly one file, bound to one
    device, with a playback-count limit -- the archival-content model
    the paper contrasts with event licensing.
    """

    file_id: str
    device_id: str
    content_key: bytes
    max_playbacks: int
    issued_at: float
    signature: bytes = b""

    def body_bytes(self) -> bytes:
        enc = Encoder()
        enc.put_str(self.file_id)
        enc.put_str(self.device_id)
        enc.put_bytes(self.content_key)
        enc.put_u32(self.max_playbacks)
        enc.put_f64(self.issued_at)
        return enc.to_bytes()


class LicenseManager:
    """A centralized license server for file-granularity DRM."""

    def __init__(
        self,
        signing_key: RsaPrivateKey,
        drbg: HmacDrbg,
        max_devices_per_user: int = 3,
        default_max_playbacks: int = 5,
    ) -> None:
        self._key = signing_key
        self._drbg = drbg
        self.max_devices_per_user = max_devices_per_user
        self.default_max_playbacks = default_max_playbacks
        self._file_keys: Dict[str, bytes] = {}
        self._entitlements: Dict[Tuple[str, str], bool] = {}
        self._user_devices: Dict[str, set] = {}
        self._playbacks: Dict[Tuple[str, str], int] = {}
        self.licenses_issued = 0

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    def publish_file(self, file_id: str) -> None:
        """Register a protected file (mints its content key)."""
        self._file_keys[file_id] = self._drbg.generate(16)

    def entitle(self, user: str, file_id: str) -> None:
        """Record that a user purchased/earned access to a file."""
        if file_id not in self._file_keys:
            raise AuthorizationError(f"unknown file: {file_id}")
        self._entitlements[(user, file_id)] = True

    def acquire_license(self, user: str, device_id: str, file_id: str, now: float) -> License:
        """The playback-time license acquisition."""
        key = self._file_keys.get(file_id)
        if key is None:
            raise AuthorizationError(f"unknown file: {file_id}")
        if not self._entitlements.get((user, file_id)):
            raise AuthorizationError(f"user {user} not entitled to {file_id}")
        devices = self._user_devices.setdefault(user, set())
        if device_id not in devices:
            if len(devices) >= self.max_devices_per_user:
                raise AuthorizationError(
                    f"user {user} exceeded device limit {self.max_devices_per_user}"
                )
            devices.add(device_id)
        license_ = License(
            file_id=file_id,
            device_id=device_id,
            content_key=key,
            max_playbacks=self.default_max_playbacks,
            issued_at=now,
        )
        license_ = License(
            **{**license_.__dict__, "signature": self._key.sign(license_.body_bytes())}
        )
        self.licenses_issued += 1
        return license_

    def record_playback(self, user: str, license_: License) -> int:
        """Count one playback; raises when the limit is exhausted."""
        try:
            self.public_key.verify(license_.body_bytes(), license_.signature)
        except SignatureError:
            raise AuthorizationError("license signature invalid")
        key = (user, license_.file_id)
        count = self._playbacks.get(key, 0)
        if count >= license_.max_playbacks:
            raise AuthorizationError("playback limit reached")
        self._playbacks[key] = count + 1
        return count + 1


@dataclass
class FlashCrowdResult:
    """Outcome of one flash-crowd provisioning experiment."""

    arrivals: int
    n_servers: int
    mean_wait: float
    p95_wait: float
    max_wait: float
    served_within_sla: float  # fraction served within the SLA bound


class TraditionalDrmSimulation:
    """Queueing behaviour of playback-time licensing under a flash crowd.

    All ``arrivals`` clients request a license within ``window``
    seconds of the event start (front-loaded).  The License Manager is
    an ``n_servers``-wide station with per-request service time
    ``service_time`` (dominated by the license signature).  This is
    the system the paper rules out "due to scalability and reliability
    concern"; the measured waits show why.
    """

    def __init__(
        self,
        rng: random.Random,
        service_time: float = 0.004,
        sla: float = 3.0,
    ) -> None:
        self._rng = rng
        self.service_time = service_time
        self.sla = sla

    def run(self, arrivals: int, n_servers: int, window: float = 120.0) -> FlashCrowdResult:
        """Simulate one flash crowd; returns wait-time statistics."""
        sim = Simulator()
        station = ServiceStation(
            sim,
            n_servers=n_servers,
            mean_service_time=self.service_time,
            rng=self._rng,
            name="license-manager",
        )
        waits: List[float] = []
        times = sorted(
            self._rng.expovariate(3.0 / window) for _ in range(arrivals)
        )
        for t in times:
            sim.schedule_at(
                t,
                lambda s, st=station: st.submit(
                    on_complete=lambda _s, sojourn: waits.append(sojourn)
                ),
            )
        sim.run()
        waits.sort()
        n = len(waits)
        return FlashCrowdResult(
            arrivals=arrivals,
            n_servers=n_servers,
            mean_wait=sum(waits) / n if n else 0.0,
            p95_wait=waits[int(0.95 * (n - 1))] if n else 0.0,
            max_wait=waits[-1] if n else 0.0,
            served_within_sla=(sum(1 for w in waits if w <= self.sla) / n) if n else 0.0,
        )

    def provisioning_needed(self, arrivals: int, window: float, sla_fraction: float = 0.95) -> int:
        """Smallest server count meeting the SLA for a flash crowd.

        Doubling search then binary refinement; this is the "peak-load
        provisioning" number the paper's architecture avoids paying.
        """
        low, high = 1, 1
        while self.run(arrivals, high, window).served_within_sla < sla_fraction:
            high *= 2
            if high > 4096:
                return high
        while low < high:
            mid = (low + high) // 2
            if self.run(arrivals, mid, window).served_within_sla >= sla_fraction:
                high = mid
            else:
                low = mid + 1
        return low

"""Baselines the paper's design is compared against.

* :mod:`repro.baselines.traditional` -- "traditional DRM": per-file
  playback licenses acquired from a central License Manager at
  playback time (Section I).  Under a live event's flash crowd this
  requires peak-load provisioning; the ablation benches quantify the
  queueing collapse the paper's architecture avoids.
* :mod:`repro.baselines.central_keyserver` -- the semi-distributed
  architecture of related work (e.g. ref [18]): content keys fetched
  by every client from a central key server instead of pushed
  peer-to-peer.  Every re-key becomes a synchronized request storm of
  N clients, versus the P2P push's per-link constant cost.
"""

from repro.baselines.traditional import LicenseManager, TraditionalDrmSimulation
from repro.baselines.central_keyserver import CentralKeyServer, KeyDistributionComparison

__all__ = [
    "LicenseManager",
    "TraditionalDrmSimulation",
    "CentralKeyServer",
    "KeyDistributionComparison",
]

"""Durability counters: WAL growth, snapshot cadence, recovery speed.

The store subsystem feeds these; experiment harnesses and the
``repro store`` CLI read them.  Everything is a plain counter or
gauge -- no sampling -- because durability questions ("how big did the
log get before compaction?", "how fast does replay run?") are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class StoreStats:
    """Counters for one :class:`~repro.store.DurableStore`."""

    records_appended: int = 0
    bytes_appended: int = 0
    snapshots_written: int = 0
    snapshot_bytes: int = 0
    #: Set by the most recent recovery, if any.
    records_replayed: int = 0
    recovery_seconds: Optional[float] = None
    torn_tails_truncated: int = 0

    @property
    def replay_records_per_sec(self) -> Optional[float]:
        """WAL replay throughput of the last recovery."""
        if self.recovery_seconds is None or self.recovery_seconds <= 0:
            return None
        return self.records_replayed / self.recovery_seconds

    def note_append(self, nbytes: int) -> None:
        self.records_appended += 1
        self.bytes_appended += nbytes

    def note_snapshot(self, nbytes: int) -> None:
        self.snapshots_written += 1
        self.snapshot_bytes = nbytes

    def note_recovery(self, records: int, seconds: float) -> None:
        self.records_replayed = records
        self.recovery_seconds = seconds


def format_durability_report(stores: Dict[str, "object"]) -> str:
    """Plain-text table over named stores (values: DurableStore).

    Imported lazily by callers that hold stores; typed loosely to keep
    metrics free of a dependency on the store package.
    """
    from repro.metrics.reporting import format_table

    rows: List[Tuple] = []
    for name in sorted(stores):
        store = stores[name]
        stats = store.stats
        replay = stats.replay_records_per_sec
        rows.append(
            (
                name,
                store.record_count(),
                store.wal_bytes(),
                stats.snapshots_written,
                stats.records_replayed,
                f"{stats.recovery_seconds * 1000:.1f}" if stats.recovery_seconds else "-",
                f"{replay:.0f}" if replay else "-",
            )
        )
    return format_table(
        ["store", "wal records", "wal bytes", "snapshots",
         "replayed", "recovery (ms)", "replay rec/s"],
        rows,
    )

"""Counters for the sharded manager tier (see :mod:`repro.sharding`).

One block per deployment (registered as ``sharding`` in
``Deployment.metrics``): the directories, the partitioned viewing log,
and the reshard coordinator all tally into the same instance, so one
snapshot answers "what did placement and migration cost".
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ShardingCounters:
    """Tallies for placement lookups and live resharding."""

    #: Placement lookups answered from the hash ring.
    ring_lookups: int = 0
    #: Placement lookups answered by a pinned directory override.
    pinned_lookups: int = 0
    #: Lookups refused because the key's range was frozen mid-reshard.
    frozen_deferrals: int = 0
    #: Viewing-log operations routed to a partition other than the
    #: Channel Manager that received the request -- the price of
    #: partitioning the log by user instead of by channel.
    cross_shard_lookups: int = 0

    #: Reshard executions started / completed / rolled back / resumed.
    migrations_started: int = 0
    migrations_completed: int = 0
    migrations_rolled_back: int = 0
    migrations_resumed: int = 0
    #: Keys whose owner changed at a completed cutover.
    keys_moved: int = 0
    #: Bytes of WAL/snapshot state copied between shard stores.
    migration_bytes: int = 0
    #: Deferred operations replayed after cutover (in-flight renewals).
    replayed_operations: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__dataclass_fields__}

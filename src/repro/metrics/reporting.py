"""Plain-text report rendering for benches and examples.

Benchmarks print the same rows/series the paper's figures show; these
helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    title: str, series: Sequence[Tuple[float, float]], x_label: str, y_label: str
) -> str:
    """Render a (x, y) series as a labelled two-column listing."""
    lines = [title, f"{x_label}\t{y_label}"]
    for x, y in series:
        lines.append(f"{x:.3f}\t{y:.4f}")
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A crude ASCII sparkline, for eyeballing shapes in bench output."""
    if not values:
        return ""
    blocks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    # Downsample to the requested width.
    step = max(1, len(values) // width)
    sampled = [values[i] for i in range(0, len(values), step)]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in sampled
    )


def cdf_summary(
    label: str, cdf: Sequence[Tuple[float, float]], probes: Sequence[float] = (0.5, 0.8, 0.9, 0.95, 0.99)
) -> List[Tuple[str, float, float]]:
    """Rows (label, quantile, value) at standard CDF probe points."""
    rows = []
    for probe in probes:
        value = _quantile_from_cdf(cdf, probe)
        rows.append((label, probe, value))
    return rows


def _quantile_from_cdf(cdf: Sequence[Tuple[float, float]], q: float) -> float:
    """First x whose cumulative fraction reaches q."""
    for value, fraction in cdf:
        if fraction >= q:
            return value
    return cdf[-1][0] if cdf else float("nan")

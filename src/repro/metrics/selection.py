"""Peer-selection cost instrumentation.

PR 8's ranked SWITCH2 pipeline decides *which* parents a joiner sees;
this block counts *what that decision cost*.  The interesting ratio is
``candidates_considered / requests``: the O(n) scan reference examines
every eligible member per request (the ratio grows with the overlay),
while the incremental :class:`~repro.p2p.index.CandidateIndex` pops a
near-constant handful from its bucket heaps.  The flash-crowd storm
surfaces these counters next to the JOIN_E2E latency report, and the
overlay-locality benchmark's scaling curve asserts the indexed ratio
stays flat from 10k to 100k viewers.

Like :mod:`repro.metrics.hotpath`, the module is dependency-free so
the overlay layer can import it without a cycle, and the counters live
on a process-global instance.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class SelectionCounters:
    """Process-wide counters for the peer-selection plane."""

    #: Peer-list/repair selections served (ranked, region, or repair).
    requests: int = 0
    #: Subset of :attr:`requests` answered from the candidate index.
    index_hits: int = 0
    #: Subset of :attr:`requests` that fell back to a full O(n) scan
    #: (index disabled, or a scan-reference provider).
    fallback_scans: int = 0
    #: Candidates examined across all requests (scan: every eligible
    #: member per request; index: validated heap pops per request).
    candidates_considered: int = 0
    #: Lazily-deleted heap tuples discarded during index draws.
    stale_entries_skipped: int = 0
    #: Membership events the index absorbed (register/remove/capacity/
    #: depth/admissibility updates published by the overlay).
    index_events: int = 0
    #: Bucket-heap compactions (a heap outgrew its live membership and
    #: was rebuilt from the bucket's member set).
    rebuilds: int = 0
    #: ``CandidateIndex.verify_against`` self-checks executed.
    verify_checks: int = 0

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between phases)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for reports and BENCH_*.json files."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold a worker process's counter delta into this instance."""
        names = {f.name for f in fields(self)}
        for name, value in delta.items():
            if name not in names:
                raise ValueError(f"unknown selection counter: {name!r}")
            setattr(self, name, getattr(self, name) + value)

    def delta_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Counter growth since a :meth:`snapshot` (storm windows)."""
        return {name: value - before.get(name, 0) for name, value in self.snapshot().items()}

    @property
    def candidates_per_request(self) -> float:
        """Mean candidates examined per selection (0.0 when idle)."""
        return self.candidates_considered / self.requests if self.requests else 0.0


#: The process-global counter instance the library increments.
counters = SelectionCounters()

"""Latency sample collection, binned the way the paper analyses it.

Samples are (time, round, latency) triples.  The collector answers the
two questions the evaluation asks:

* Fig. 5: per-hour median latency per protocol round, alongside the
  concurrent-user count in the same hour;
* Fig. 6: the latency CDF per round split into peak (18:00--24:00)
  and off-peak (00:00--18:00) populations.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import cdf_points, median, pearson_correlation
from repro.workload.diurnal import is_peak_hour


@dataclass
class HourlyBin:
    """Aggregates for one (round, hour-index) cell."""

    hour_index: int
    latencies: List[float] = field(default_factory=list)

    @property
    def count(self) -> int:
        return len(self.latencies)

    @property
    def median_latency(self) -> float:
        return median(self.latencies)


class LatencyCollector:
    """Accumulates protocol-round latency samples over a run."""

    def __init__(self, bin_seconds: float = 3600.0) -> None:
        self.bin_seconds = bin_seconds
        self._samples: Dict[str, List[Tuple[float, float]]] = defaultdict(list)

    def record(self, round_name: str, time: float, latency: float) -> None:
        """Add one sample.

        Rejects non-finite samples explicitly: ``latency < 0`` is
        False for NaN, so without the finiteness check a single NaN
        (or inf) from a broken timer would sail through and silently
        poison every hourly median and the Fig. 5 Pearson statistic
        downstream.
        """
        if not math.isfinite(latency):
            raise ValueError(f"latency must be finite, got {latency}")
        if latency < 0:
            raise ValueError("latency cannot be negative")
        if not math.isfinite(time):
            raise ValueError(f"sample time must be finite, got {time}")
        self._samples[round_name].append((time, latency))

    def count(self, round_name: str) -> int:
        """Samples recorded for a round."""
        return len(self._samples.get(round_name, []))

    def rounds(self) -> List[str]:
        """Round names with at least one sample."""
        return sorted(self._samples.keys())

    def latencies(self, round_name: str) -> List[float]:
        """All latencies for one round."""
        return [lat for _, lat in self._samples.get(round_name, [])]

    # ------------------------------------------------------------------
    # Fig. 5 shape: hourly medians vs concurrent users
    # ------------------------------------------------------------------

    def hourly_bins(self, round_name: str) -> List[HourlyBin]:
        """Samples bucketed by hour index, sparse (only non-empty bins)."""
        buckets: Dict[int, HourlyBin] = {}
        for time, latency in self._samples.get(round_name, []):
            index = int(time // self.bin_seconds)
            bucket = buckets.get(index)
            if bucket is None:
                bucket = HourlyBin(hour_index=index)
                buckets[index] = bucket
            bucket.latencies.append(latency)
        return [buckets[i] for i in sorted(buckets)]

    def hourly_median_series(self, round_name: str) -> List[Tuple[float, float]]:
        """(bin start time, median latency) per non-empty hour."""
        return [
            (b.hour_index * self.bin_seconds, b.median_latency)
            for b in self.hourly_bins(round_name)
        ]

    def correlation_with_load(
        self,
        round_name: str,
        concurrency_at: Callable[[float], int],
        min_samples_per_bin: int = 1,
    ) -> float:
        """Pearson r between hourly median latency and hourly load.

        This is exactly the paper's Fig. 5 statistic.  Bins with fewer
        than ``min_samples_per_bin`` samples can be excluded, mirroring
        the paper's note that overnight spikes are "statistically
        insignificant samples".
        """
        medians: List[float] = []
        loads: List[float] = []
        for bucket in self.hourly_bins(round_name):
            if bucket.count < min_samples_per_bin:
                continue
            bin_mid = (bucket.hour_index + 0.5) * self.bin_seconds
            medians.append(bucket.median_latency)
            loads.append(float(concurrency_at(bin_mid)))
        if len(medians) < 2:
            return 0.0
        return pearson_correlation(loads, medians)

    # ------------------------------------------------------------------
    # Fig. 6 shape: peak vs off-peak CDFs
    # ------------------------------------------------------------------

    def split_peak_offpeak(self, round_name: str) -> "tuple[List[float], List[float]]":
        """(peak, off-peak) latency populations per the paper's split."""
        peak: List[float] = []
        off_peak: List[float] = []
        for time, latency in self._samples.get(round_name, []):
            hour = (time / 3600.0) % 24.0
            if is_peak_hour(hour):
                peak.append(latency)
            else:
                off_peak.append(latency)
        return peak, off_peak

    def peak_offpeak_cdfs(
        self, round_name: str
    ) -> "tuple[List[Tuple[float, float]], List[Tuple[float, float]]]":
        """Empirical CDFs for the two populations."""
        peak, off_peak = self.split_peak_offpeak(round_name)
        return cdf_points(peak), cdf_points(off_peak)

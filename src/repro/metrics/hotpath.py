"""Hot-path instrumentation: crypto and cache counters.

The ticket pipeline's latency budget is dominated by a handful of
operations -- RSA private-key exponentiations, User Ticket signature
verifications, and policy evaluations -- each of which PR 2 gave a
fast path (CRT signing, the ticket verification cache, the compiled
policy index).  This module counts both the slow and the fast
executions so benchmarks and operators can verify the fast paths are
actually being taken.

The module is deliberately dependency-free (no imports from
``repro.core`` or ``repro.crypto``) so the crypto layer can import it
without a cycle.  Counters are plain integers on a process-global
instance: the simulator is single-threaded and the real system would
shard these per worker.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class HotpathCounters:
    """Process-wide counters for the ticket pipeline's hot paths."""

    #: RSA private-key operations (signing + decryption), total.
    rsa_private_ops: int = 0
    #: Subset of :attr:`rsa_private_ops` that took the CRT fast path.
    rsa_crt_ops: int = 0
    #: RSA public-key signature verifications actually performed.
    rsa_verifies: int = 0
    #: Ticket signature checks answered from the verification cache.
    ticket_cache_hits: int = 0
    #: Ticket signature checks that had to do the full RSA verify.
    ticket_cache_misses: int = 0
    #: Compiled policy indexes built (one per record version).
    policy_index_builds: int = 0
    #: Policy evaluations served through a compiled index.
    policy_index_evals: int = 0

    def reset(self) -> None:
        """Zero every counter (benchmarks call this between phases)."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> Dict[str, int]:
        """A plain-dict copy, for reports and BENCH_*.json files."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, delta: Dict[str, int]) -> None:
        """Fold a worker process's counter delta into this instance.

        Counterpart of :meth:`DataplaneCounters.merge
        <repro.metrics.dataplane.DataplaneCounters.merge>`: RSA ops
        performed inside pool workers land here so the CRT-fast-path
        accounting survives offload.  Unknown names are an error.
        """
        names = {f.name for f in fields(self)}
        for name, value in delta.items():
            if name not in names:
                raise ValueError(f"unknown hotpath counter: {name!r}")
            setattr(self, name, getattr(self, name) + value)

    @property
    def ticket_cache_hit_rate(self) -> float:
        """Hits / (hits + misses); 0.0 when nothing was looked up."""
        total = self.ticket_cache_hits + self.ticket_cache_misses
        return self.ticket_cache_hits / total if total else 0.0


#: The process-global counter instance the library increments.
counters = HotpathCounters()

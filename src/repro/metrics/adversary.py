"""Byzantine-peer detection and containment counters.

The paper's threat model assumes overlay peers are *not* trusted: they
may pollute packets, withhold or replay content keys, lie about their
position to game parent selection, or flood the control plane with
JOINs.  This module counts what the detection plane
(:mod:`repro.p2p.scorecard`) observes and what the containment plane
does about it, so a chaos run -- or an operator dashboard -- can see
the detect -> quarantine -> evict -> repair pipeline working.

Unlike :mod:`repro.metrics.dataplane` these counters are *per
deployment*, not process-global: a scorecard is scoped to one
deployment's overlays, and two deployments in one test process must
not share misbehavior books.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict


@dataclass
class MisbehaviorCounters:
    """One deployment's detection/containment tallies."""

    #: Undecryptable packets attributed to the forwarding parent while
    #: the receiver *held* the packet's key -- i.e. the ciphertext
    #: failed authentication: pollution.
    pollution_detected: int = 0
    #: Undecryptable packets attributed to a parent because the key for
    #: the packet's serial never arrived: key withholding suspicion.
    missing_key_detected: int = 0
    #: Key updates rejected by the receiver-side replay window
    #: (activation time older than the newest accepted key by more
    #: than the window).
    key_replays_rejected: int = 0
    #: Advertised depths contradicted by the overlay's measured tree
    #: (a peer claiming to sit shallower than it does).
    depth_lies_detected: int = 0
    #: SWITCH/JOIN requests refused by a Channel Manager's per-address
    #: rate limiter.
    joins_rate_limited: int = 0
    #: Peers whose decayed misbehavior score crossed the quarantine
    #: threshold.
    peers_quarantined: int = 0
    #: Quarantined peers forcibly removed from an overlay (their
    #: children re-parented through the ranked repair path).
    peers_evicted: int = 0
    #: Orphans re-parented during evictions (repair routed around the
    #: quarantined peer by construction).
    eviction_repairs: int = 0

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)

    def snapshot(self) -> Dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

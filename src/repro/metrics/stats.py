"""Statistical primitives used by the evaluation.

Self-contained implementations (no numpy dependency in the library
core) of exactly the statistics the paper reports: medians (Fig. 5),
CDFs (Fig. 6), and the Pearson product-moment correlation coefficient
("ranges from -0.03 to 0.08 for login and channel switching protocols,
and is 0.13 for join protocol", Section VI).
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def median(values: Sequence[float]) -> float:
    """The sample median; raises on empty input."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2 == 1:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # a + frac*(b - a) is exact when a == b, unlike the two-product
    # form, keeping percentile() monotone in q for repeated values.
    return ordered[low] + frac * (ordered[high] - ordered[low])


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient.

    Returns 0.0 when either series is constant (the limit the paper's
    flat-latency claim approaches: a constant latency series has no
    correlation with load).
    """
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    var_x = sum((x - mx) ** 2 for x in xs)
    var_y = sum((y - my) ** 2 for y in ys)
    if var_x == 0.0 or var_y == 0.0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def cdf_points(values: Sequence[float]) -> List[Tuple[float, float]]:
    """Empirical CDF as (value, cumulative-fraction) steps."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    return [(v, (i + 1) / n) for i, v in enumerate(ordered)]


def cdf_at(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples <= threshold."""
    if not values:
        raise ValueError("cdf of empty sequence")
    return sum(1 for v in values if v <= threshold) / len(values)


def ks_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Two-sample Kolmogorov--Smirnov statistic.

    Used to quantify Fig. 6's "virtually identical" claim: the KS
    distance between peak and off-peak latency distributions should be
    small.
    """
    if not a or not b:
        raise ValueError("ks distance of empty sequence")
    sa, sb = sorted(a), sorted(b)
    ia = ib = 0
    distance = 0.0
    while ia < len(sa) and ib < len(sb):
        # Advance past all samples equal to the smaller current value
        # on BOTH sides before measuring -- otherwise ties inflate the
        # statistic mid-step.
        x = min(sa[ia], sb[ib])
        while ia < len(sa) and sa[ia] == x:
            ia += 1
        while ib < len(sb) and sb[ib] == x:
            ib += 1
        distance = max(distance, abs(ia / len(sa) - ib / len(sb)))
    return distance

"""Measurement and reporting: the statistics behind Figs. 5 and 6.

* :mod:`repro.metrics.stats` -- medians, percentiles, CDFs, and the
  Pearson product-moment correlation the paper reports;
* :mod:`repro.metrics.collector` -- timestamped latency samples binned
  by protocol round and by hour, plus peak/off-peak splits;
* :mod:`repro.metrics.reporting` -- plain-text tables and figure
  series shaped like the paper's plots;
* :mod:`repro.metrics.hotpath` -- counters for the ticket pipeline's
  fast paths (CRT signing, the verification cache, compiled policy
  indexes);
* :mod:`repro.metrics.registry` -- one front door over every counter
  source (hot path, durability stores, links, tracer).
"""

from repro.metrics.stats import (
    median,
    percentile,
    pearson_correlation,
    cdf_points,
)
from repro.metrics.collector import LatencyCollector, HourlyBin
from repro.metrics.dataplane import DataplaneCounters, counters as dataplane_counters
from repro.metrics.hotpath import HotpathCounters, counters as hotpath_counters
from repro.metrics.registry import MetricsRegistry, registry

__all__ = [
    "median",
    "percentile",
    "pearson_correlation",
    "cdf_points",
    "LatencyCollector",
    "HourlyBin",
    "DataplaneCounters",
    "dataplane_counters",
    "HotpathCounters",
    "hotpath_counters",
    "MetricsRegistry",
    "registry",
]

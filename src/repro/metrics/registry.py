"""A unified registry for the repo's scattered counter sources.

The hot-path counters, the durability stores, the reliable links, and
the tracer each keep their own statistics.  The registry gives them one
front door: a source registers under a name, ``snapshot()`` resolves
every source to a flat ``{metric: value}`` mapping, and ``report()``
renders the whole lot as one table.  Sources stay live -- the registry
holds references, not copies -- so a snapshot always reflects current
values.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Mapping

from repro.metrics.dataplane import counters as _dataplane_counters
from repro.metrics.hotpath import counters as _hotpath_counters
from repro.metrics.reporting import format_table
from repro.metrics.selection import counters as _selection_counters


class MetricsRegistry:
    """Named metric sources resolved lazily at snapshot time.

    A source may be:

    * a callable returning a mapping (``tracer.snapshot`` style);
    * an object with a ``snapshot()`` method;
    * a dataclass instance (fields become metrics);
    * a plain mapping.
    """

    def __init__(self) -> None:
        self._sources: Dict[str, Any] = {}

    def register(self, name: str, source: Any) -> None:
        """Add (or replace) a metric source under ``name``."""
        self._sources[name] = source

    def unregister(self, name: str) -> None:
        self._sources.pop(name, None)

    def sources(self) -> Dict[str, Any]:
        return dict(self._sources)

    @staticmethod
    def _resolve(source: Any) -> Dict[str, Any]:
        if dataclasses.is_dataclass(source) and not isinstance(source, type):
            return dataclasses.asdict(source)
        if isinstance(source, Mapping):
            return dict(source)
        if hasattr(source, "snapshot") and callable(source.snapshot):
            source = source.snapshot()
        elif callable(source):
            source = source()
        else:
            raise TypeError(f"cannot resolve metric source: {source!r}")
        if dataclasses.is_dataclass(source) and not isinstance(source, type):
            return dataclasses.asdict(source)
        if isinstance(source, Mapping):
            return dict(source)
        raise TypeError(f"metric source resolved to non-mapping: {source!r}")

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Resolve every source to ``{source: {metric: value}}``."""
        return {name: self._resolve(src) for name, src in sorted(self._sources.items())}

    def report(self) -> str:
        """One aligned table over every registered source."""
        rows = []
        for name, metrics in self.snapshot().items():
            for metric, value in metrics.items():
                rows.append((name, metric, value))
        return format_table(["source", "metric", "value"], rows)


#: Process-wide default registry; the hot-path and data-plane
#: counters are always in.
registry = MetricsRegistry()
registry.register("hotpath", _hotpath_counters)
registry.register("dataplane", _dataplane_counters)
registry.register("selection", _selection_counters)

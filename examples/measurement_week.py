#!/usr/bin/env python3
"""Reproduce the paper's performance study (Figs. 5 and 6) end to end.

Simulates the measurement week -- diurnal session arrivals, zapping,
re-logins and renewals, the 2-User-Manager / 2x2-Channel-Manager
deployment of Section VI -- and prints every panel of both figures
plus the headline Pearson correlations, side by side with the paper's
numbers.

Run:  python examples/measurement_week.py [--peak N]
      (default N=400; the production week peaked around 27000 --
       pass --peak 27000 for full scale if you have a few minutes)
"""

import argparse

from repro.experiments import fig5, fig6
from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--peak", type=int, default=400,
                        help="peak concurrent users to simulate")
    args = parser.parse_args()

    config = WeeklongConfig(peak_concurrent=args.peak, n_channels=60)
    print(f"simulating one week: peak {config.peak_concurrent} concurrent, "
          f"{config.n_channels} channels, "
          f"{config.um_instances} User Manager instances, "
          f"{config.cm_partitions}x{config.cm_instances_per_partition} "
          f"Channel Manager instances ...")
    result = WeeklongRunner(config).run()
    print(f"done: {len(result.trace.sessions)} sessions, "
          f"{len(result.trace.events)} protocol operations, "
          f"UM utilization {result.um_utilization:.4f}, "
          f"CM utilizations {[f'{u:.4f}' for u in result.cm_utilizations]}")
    print()

    for panel_key in ("a-login", "b-switch", "c-join"):
        print(fig5.render_panel(result, panel_key))
        print()
    print("Headline statistic (paper Section VI vs this run):")
    print(fig5.paper_comparison(result))
    print()

    for panel_key in ("a-login", "b-switch", "c-join"):
        print(fig6.render_panel(result, panel_key))
        print()

    print("Interpretation: manager-round latencies are WAN-dominated and")
    print("decorrelated from load (stateless farms run far from saturation);")
    print("JOIN shows the paper's slight positive coupling from capacity")
    print("retries; peak and off-peak CDFs are virtually identical.")


if __name__ == "__main__":
    main()

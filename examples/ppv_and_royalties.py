#!/usr/bin/env python3
"""Pay-per-view evening with royalty reporting.

The provider schedules a pay-per-view boxing match on an otherwise
free channel.  Purchases happen out-of-band at the Account Manager;
the EPG compiles the program rights into attribute/policy rules; the
Channel Manager enforces them; and afterwards the viewing log yields
the per-view charges and the royalty statement (Section II's Unique
User Count requirements, end to end).

Run:  python examples/ppv_and_royalties.py
"""

from repro import Deployment
from repro.core.epg import Program
from repro.errors import PolicyRejectError

FIGHT_START = 21 * 3600.0
FIGHT_END = FIGHT_START + 2 * 3600.0


def main() -> None:
    deployment = Deployment(seed=99)
    deployment.add_free_channel("arena", regions=["CH", "DE"])

    deployment.epg.add_program(Program(
        program_id="title-fight",
        channel_id="arena",
        start=FIGHT_START,
        end=FIGHT_END,
        title="The Title Fight",
        ppv_price=19.90,
    ))
    deployment.epg.apply_all_rights(now=0.0)
    print(f"scheduled PPV 'The Title Fight' "
          f"{FIGHT_START / 3600:.0f}:00-{FIGHT_END / 3600:.0f}:00 @ 19.90")

    # Three buyers, two freeloaders.
    buyers, freeloaders = [], []
    for i in range(3):
        email = f"buyer{i}@example.org"
        deployment.accounts.register(email, "pw")
        deployment.accounts.top_up(email, 25.0)
        deployment.epg.purchase(deployment.accounts, email, "title-fight")
        buyers.append(deployment.create_client(email, "pw", region="CH", register=False))
    for i in range(2):
        email = f"free{i}@example.org"
        freeloaders.append(deployment.create_client(email, "pw", region="CH"))

    # Before the fight: everyone watches the free programming.
    afternoon = FIGHT_START - 2 * 3600.0
    for client in buyers + freeloaders:
        client.login(now=afternoon)
        response = client.switch_channel("arena", now=afternoon)
        capped = response.ticket.expire_time == FIGHT_START
    print("afternoon: all 5 viewers admitted to the free programming"
          " (non-buyers' tickets expire at the PPV fence)")

    # Fight time.
    during = FIGHT_START + 600.0
    admitted = refused = 0
    for client in buyers + freeloaders:
        client.login(now=during)
        try:
            client.switch_channel("arena", now=during)
            admitted += 1
        except PolicyRejectError:
            refused += 1
    print(f"fight time: {admitted} buyers admitted, {refused} non-buyers refused")

    # Buyers renew through the fight (billing sees one view each).
    for client in buyers:
        renew_at = client.channel_ticket.expire_time - 10.0
        client.login(now=renew_at)
        client.renew_channel_ticket(now=renew_at)

    # The books afterwards.
    analytics = deployment.analytics_for("arena")
    charges = analytics.per_view_charges("arena", FIGHT_START, FIGHT_END, price=19.90)
    print(f"per-view charges: {len(charges)} accounts x 19.90 "
          f"(renewals not double-billed)")
    statement = analytics.royalty_statement(0.0, FIGHT_END + 3600.0,
                                            rate_per_viewer_hour=0.05)
    for channel, owed in statement.items():
        print(f"royalty owed for {channel!r}: {owed:.2f} "
              f"({analytics.channel_report(channel, 0.0, FIGHT_END + 3600.0).viewer_hours:.2f} viewer-hours)")
    report = analytics.channel_report("arena", FIGHT_START, FIGHT_END)
    print(f"fight-window audience: {report.unique_viewers} unique, "
          f"peak {report.peak_concurrent} concurrent")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Threat playbook: Section IV-G, scenario by scenario.

Runs each attack from the paper's threat discussion against the real
implementation and reports where it is stopped.

Run:  python examples/threat_playbook.py
"""

import dataclasses

from repro import Deployment
from repro.core.challenge import answer_challenge
from repro.core.protocol import JoinAccept, JoinRequest, Switch1Request, Switch2Request
from repro.core.tickets import ChannelTicket, UserTicket
from repro.errors import (
    AttestationError,
    ChallengeError,
    DecryptionError,
    RenewalRefusedError,
    SignatureError,
    TicketInvalidError,
)


def scenario(title):
    print(f"\n=== {title} ===")


def main() -> None:
    deployment = Deployment(seed=1337)
    deployment.add_free_channel("target", regions=["CH"])

    victim = deployment.create_client("victim@example.org", "pw", region="CH")
    victim.login(now=0.0)
    victim_peer = deployment.watch(victim, "target", now=0.0)
    attacker = deployment.create_client("attacker@example.org", "pw", region="CH")

    scenario("1. Stolen User Ticket, no private key")
    stolen_ut = UserTicket.from_bytes(victim.user_ticket.to_bytes())
    manager = deployment.channel_manager_for("target")
    token = manager.switch1(
        Switch1Request(user_ticket=stolen_ut, channel_id="target"), now=1.0
    ).token
    try:
        manager.switch2(
            Switch2Request(
                user_ticket=stolen_ut,
                token=token,
                signature=answer_challenge(token, attacker.private_key),
                channel_id="target",
            ),
            observed_addr=stolen_ut.net_addr,
            now=1.0,
        )
    except ChallengeError as exc:
        print(f"STOPPED at nonce challenge: {exc}")

    scenario("2. Stolen Channel Ticket replayed at an honest peer")
    stolen_ct = ChannelTicket.from_bytes(victim.channel_ticket.to_bytes())
    result = victim_peer.handle_join(
        JoinRequest(channel_ticket=stolen_ct),
        observed_addr=attacker.net_addr,
        now=1.0,
    )
    print(f"STOPPED at NetAddr binding: {result.reason}")

    scenario("3. Full address spoofing: join accepted, content still dark")
    honest = deployment.create_client("honest@example.org", "pw", region="CH")
    honest.login(now=0.0)
    honest_peer = deployment.watch(honest, "target", now=0.0)
    accept = honest_peer.handle_join(
        JoinRequest(channel_ticket=stolen_ct),
        observed_addr=victim.net_addr,  # spoofed end-to-end
        now=1.0,
    )
    assert isinstance(accept, JoinAccept)
    try:
        attacker.private_key.decrypt(accept.encrypted_session_key)
    except DecryptionError:
        print("STOPPED at session key: RSA-encrypted to the victim's key")

    scenario("4. Ticket forgery")
    forged = dataclasses.replace(victim.channel_ticket, expire_time=1e12)
    try:
        forged.verify(manager.public_key, now=1.0)
    except SignatureError:
        print("STOPPED: digital signature covers every field")

    scenario("5. One account, two locations")
    second_home = deployment.create_client(
        "victim@example.org", "pw", region="CH", register=False
    )
    second_home.login(now=100.0)
    second_home.switch_channel("target", now=100.0)
    print("new location served immediately (mobility, Section IV-D)")
    renew_at = victim.channel_ticket.expire_time - 10.0
    victim.login(now=renew_at)
    try:
        victim.renew_channel_ticket(now=renew_at)
    except RenewalRefusedError as exc:
        print(f"old location STOPPED at renewal: {exc}")

    scenario("6. Tampered client binary")
    cracked = deployment.create_client(
        "cracked@example.org", "pw", region="CH",
        image=bytes(b ^ 0xA5 for b in deployment.client_image),
    )
    try:
        cracked.login(now=0.0)
    except AttestationError as exc:
        print(f"STOPPED at remote attestation: {exc}")

    scenario("7. Content injection (channel hijack)")
    from repro.core.packets import ContentPacket

    genuine = deployment.server("target").emit_packet(10.0)
    rogue = ContentPacket(
        serial=genuine.serial, sequence=genuine.sequence,
        ciphertext=b"\x00" * len(genuine.ciphertext),
    )
    try:
        victim.receive_packet(rogue)
    except DecryptionError:
        print("STOPPED: integrity tag mismatch -- hijack detected, not forwarded")

    scenario("8. What the DRM concedes (and the paper concedes too)")
    plaintext = victim.receive_packet(genuine)
    print(f"an authorized-but-compromised client holds {len(plaintext)} plaintext "
          "bytes it could re-serve out-of-band -- true of every DRM; the P2P "
          "network itself never carries plaintext")


if __name__ == "__main__":
    main()

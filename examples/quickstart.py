#!/usr/bin/env python3
"""Quickstart: stand up the whole service and watch a channel.

Walks the numbered steps of the paper's Fig. 1 with real components:

  1-2  client authenticates with the User Manager, gets a User Ticket
  3-4  client presents the ticket to the Channel Manager, gets a
       Channel Ticket plus a peer list
  5-6  client joins a peer with the Channel Ticket, receives the
       per-link session key and the current content key, and starts
       decrypting the stream

Run:  python examples/quickstart.py
"""

from repro import Deployment


def main() -> None:
    # --- Service provider side -----------------------------------------
    deployment = Deployment(seed=2011)
    deployment.add_free_channel("news", regions=["CH", "DE"])
    deployment.add_subscription_channel("movies", regions=["CH"], package_id="101")

    # --- Out-of-band account creation (the Account Manager web site) ---
    deployment.accounts.register("alice@example.org", "correct horse battery")
    deployment.accounts.top_up("alice@example.org", 20.0)
    deployment.accounts.subscribe("alice@example.org", "101", price=9.90)

    # --- Client side ----------------------------------------------------
    alice = deployment.create_client(
        "alice@example.org", "correct horse battery", region="CH", register=False
    )

    ticket = alice.login(now=0.0)  # steps 1-2
    print(f"logged in: UserIN={ticket.user_id}")
    print("attributes in the User Ticket:")
    for attribute in ticket.attributes:
        print(f"  {attribute.name} = {attribute.value}")

    print(f"viewable channels: {alice.viewable_channels(now=0.0)}")

    response = alice.switch_channel("movies", now=1.0)  # steps 3-4
    print(
        f"channel ticket for {response.ticket.channel_id!r}, "
        f"expires at t={response.ticket.expire_time:.0f}, "
        f"{len(response.peers)} candidate peers"
    )

    peer = deployment.make_peer(alice, "movies")  # steps 5-6
    parent, attempts = deployment.overlay("movies").join(peer, response.peers, now=1.5)
    print(f"joined parent {parent.peer_id} after {attempts} attempt(s)")

    # --- The stream -----------------------------------------------------
    source = deployment.overlay("movies").source
    delivered = source.broadcast_packet(now=10.0)
    print(f"broadcast reached {delivered} direct children")
    print(f"alice decrypted {alice.packets_decrypted} packet(s)")

    # Rotate the content key (one-minute epochs) and keep watching.
    source.tick(now=55.0)  # next key enters its distribution window
    source.broadcast_packet(now=65.0)
    print(f"after re-key: {alice.packets_decrypted} packet(s) decrypted, "
          f"{alice.decrypt_failures} failures")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Broadcaster scenario: regional rights and a program blackout.

A broadcaster re-distributes its over-the-air channel on the P2P
network but has not secured Internet rights for one program (say, a
football match from 20:00 to 21:00).  Per Section IV-A, the operator
expresses the blackout as a time-boxed ``Region=ANY -> REJECT`` policy
-- and per Section IV-C, it must be deployed at least one User Ticket
lifetime before the window so no ticket survives into it.

Run:  python examples/broadcaster_blackout.py
"""

from repro import Deployment
from repro.errors import PolicyRejectError

HOUR = 3600.0
MATCH_START = 20 * HOUR
MATCH_END = 21 * HOUR


def hhmm(t: float) -> str:
    return f"{int(t // 3600) % 24:02d}:{int(t % 3600) // 60:02d}"


def main() -> None:
    deployment = Deployment(
        seed=7, user_ticket_lifetime=1800.0, channel_ticket_lifetime=900.0
    )
    deployment.add_free_channel("srf-one", regions=["CH"])

    # Deploy the blackout with the mandated lead time.
    lead = deployment.user_managers["domain-0"].ticket_lifetime
    deploy_at = MATCH_START - lead
    print(f"{hhmm(deploy_at)}  operator schedules blackout "
          f"{hhmm(MATCH_START)}-{hhmm(MATCH_END)} (lead time {lead / 60:.0f} min)")
    deployment.policy_manager.schedule_blackout(
        "srf-one", MATCH_START, MATCH_END, now=deploy_at
    )

    # A viewer who tuned in before the announcement.
    fan = deployment.create_client("fan@example.org", "pw", region="CH")
    fan.login(now=deploy_at - 300.0)
    fan.switch_channel("srf-one", now=deploy_at - 300.0)
    ticket = fan.channel_ticket
    print(f"{hhmm(ticket.start_time)}  fan's channel ticket issued, "
          f"expires {hhmm(ticket.expire_time)} "
          f"(cannot outlive the blackout start: "
          f"{ticket.expire_time <= MATCH_START})")

    # Renewal attempts march toward the blackout; expiries get pinned
    # to the window boundary, and the renewal attempted inside the
    # window is refused.
    t = ticket.expire_time - 10.0
    while True:
        fan.login(now=t)
        previous_expiry = fan.channel_ticket.expire_time
        try:
            fan.renew_channel_ticket(now=t)
        except PolicyRejectError:
            print(f"{hhmm(t)}  renewal REFUSED -- blackout in force")
            break
        expiry = fan.channel_ticket.expire_time
        pinned = " (pinned to blackout start)" if expiry == MATCH_START else ""
        print(f"{hhmm(t)}  renewal OK, new expiry {hhmm(expiry)}{pinned}")
        if expiry <= previous_expiry:
            # Expiry stopped advancing: the next attempt happens inside
            # the window (still within the renewal grace period).
            t = MATCH_START + 30.0
        else:
            t = expiry - 10.0

    # During the window: no new tickets either.
    latecomer = deployment.create_client("late@example.org", "pw", region="CH")
    latecomer.login(now=MATCH_START + 600.0)
    try:
        latecomer.switch_channel("srf-one", now=MATCH_START + 600.0)
    except PolicyRejectError as exc:
        print(f"{hhmm(MATCH_START + 600.0)}  latecomer rejected: blacked out")

    # After the window: service resumes without operator action --
    # the backing channel attribute simply expired.
    after = MATCH_END + 120.0
    latecomer.login(now=after)
    response = latecomer.switch_channel("srf-one", now=after)
    print(f"{hhmm(after)}  service resumed, ticket for "
          f"{response.ticket.channel_id!r} issued")

    # The viewing log recorded everything for royalties/billing.
    log = deployment.channel_manager_for("srf-one").viewing_log()
    print(f"viewing log: {len(log)} entries "
          f"({sum(1 for e in log if e.renewal)} renewals)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Live-event flash crowd: the P2P network absorbing correlated joins.

The paper's core premise: a live event's start produces "highly
correlated service request arrivals", which breaks playback-time
licensing (peak-load provisioning) but is exactly what the P2P
architecture absorbs -- peers admit each other, and the managers only
do cheap stateless ticket work.

This example builds a real overlay, drives an event-boundary flash
crowd of viewers through login/switch/join, rotates content keys
mid-event, and compares the manager load against what a traditional
License Manager would have faced.

Run:  python examples/flash_crowd_event.py
"""

import random

from repro import Deployment
from repro.baselines.traditional import TraditionalDrmSimulation
from repro.p2p.churn import EventBoundaryChurn
from repro.workload.arrivals import burstiness_index

AUDIENCE = 80
EVENT_START = 600.0
EVENT_END = EVENT_START + 1800.0


def main() -> None:
    deployment = Deployment(seed=42, source_capacity=8)
    deployment.add_free_channel("the-match", regions=["CH", "DE"], key_epoch=60.0)
    overlay = deployment.overlay("the-match")

    churn = EventBoundaryChurn(
        random.Random(1),
        audience=AUDIENCE,
        event_start=EVENT_START,
        event_end=EVENT_END,
        crowd_window=60.0,
    )
    events = churn.generate()
    arrivals = [e.time for e in events if e.kind == "join"]
    print(f"audience {AUDIENCE}, burstiness index "
          f"{burstiness_index(arrivals, 30.0):.1f} (Poisson would be ~1)")

    peers = {}
    join_attempts = 0
    probe_time = EVENT_START + 120.0  # mid-event snapshot point

    def apply(event) -> None:
        nonlocal join_attempts
        if event.kind == "join":
            email = f"fan{event.peer_index}@example.org"
            client = deployment.create_client(email, "pw", region="CH")
            client.login(now=event.time)
            response = client.switch_channel("the-match", now=event.time)
            peer = deployment.make_peer(client, "the-match", capacity=3)
            _, attempts = overlay.join(peer, response.peers, now=event.time)
            join_attempts += attempts
            peers[event.peer_index] = peer
        else:
            peer = peers.pop(event.peer_index, None)
            if peer is not None and peer.peer_id in overlay.peers:
                overlay.remove_peer(peer.peer_id, now=event.time)

    before_probe = [e for e in events if e.time <= probe_time]
    after_probe = [e for e in events if e.time > probe_time]
    for event in before_probe:
        apply(event)

    print(f"join attempts so far {join_attempts} "
          f"({join_attempts / max(1, len(peers)):.2f} per connected viewer)")

    # Mid-event: the tree is deep and healthy; rotate a key through it.
    overlay.check_tree()
    depths = overlay.depths()
    print(f"mid-event overlay size {overlay.size}, "
          f"max depth {max(depths.values(), default=0)}, "
          f"repairs performed {overlay.repairs}")
    epoch = int(probe_time // 60) + 1
    messages = overlay.source.tick(epoch * 60.0 - 5.0)
    print(f"one re-key pushed with {messages} link messages "
          f"(the infrastructure itself sent only {len(overlay.source.children)})")
    delivered = overlay.source.broadcast_packet(epoch * 60.0 + 5.0)
    decrypting = sum(
        1 for peer in overlay.peers.values() if peer.client.packets_decrypted > 0
    )
    print(f"broadcast delivered to {delivered} direct children; "
          f"{decrypting}/{overlay.size} connected viewers decrypted")

    # Play out the rest of the event (departures cluster at the end).
    for event in after_probe:
        apply(event)
    print(f"event over: overlay size back to {overlay.size}")

    # The manager-side cost of this entire crowd:
    manager = deployment.channel_manager_for("the-match")
    print(f"Channel Manager issued {manager.tickets_issued} tickets "
          f"({manager.rejections} rejections) -- stateless, cheap work")

    # Versus traditional DRM at playback time for the same crowd:
    baseline = TraditionalDrmSimulation(random.Random(2), service_time=0.004)
    needed = baseline.provisioning_needed(arrivals=AUDIENCE * 250, window=60.0)
    print(f"traditional License Manager serving the same event at "
          f"production scale ({AUDIENCE * 250} viewers) would need "
          f"~{needed} servers to hold a 3 s SLA at the event start")


if __name__ == "__main__":
    main()

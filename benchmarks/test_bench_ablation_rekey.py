"""Ablation A4: content-key rotation interval vs traffic and exposure.

Section IV-E picks a one-minute re-key "e.g." -- this bench sweeps the
dial and also *measures* the functional key-distribution cost on a
real overlay: messages per re-key equal the number of tree links,
duplicates are discarded by serial, and a leaked key opens exactly one
epoch.
"""

from repro.deployment import Deployment
from repro.experiments.ablations import rekey_tradeoff
from repro.metrics.reporting import format_table


def test_bench_ablation_rekey_tradeoff(benchmark):
    rows = benchmark(lambda: rekey_tradeoff(epochs=(15.0, 60.0, 300.0, 900.0)))
    assert rows[0].keys_per_hour == 240.0
    assert rows[1].keys_per_hour == 60.0  # the paper's example epoch
    table = [
        (r.epoch, r.keys_per_hour, f"{r.exposure_window:.0f}s")
        for r in rows
    ]
    print("\nA4 — re-key interval dial")
    print(format_table(["epoch (s)", "key msgs/hour/link", "leak exposure"], table))


def test_bench_ablation_rekey_functional_cost(benchmark):
    """Measured on the real overlay: one push per link per re-key."""
    deployment = Deployment(seed=5)
    deployment.add_free_channel("live", regions=["CH"], key_epoch=60.0)
    viewers = []
    for i in range(12):
        client = deployment.create_client(f"r{i}@example.org", "pw", region="CH")
        client.login(now=0.0)
        viewers.append(deployment.watch(client, "live", now=0.0, capacity=3))
    overlay = deployment.overlay("live")
    overlay.check_tree()

    epoch_counter = iter(range(1, 10**6))

    def rotate_once():
        epoch = next(epoch_counter)
        # Enter the next epoch's lead window and push.
        return overlay.source.tick(epoch * 60.0 - 5.0)

    messages = benchmark(rotate_once)
    # One message per tree link: 12 peers, single-parent tree.
    assert messages == 12

"""Fig. 5(a): median LOGIN1/LOGIN2 latency vs. total concurrent users.

Regenerates the paper's series -- per-hour median latency of each
login round over the simulated week against the concurrent-user curve
-- and checks the paper's claims: latency flat against load, Pearson r
in the weak band (paper: -0.03 to 0.08 for login rounds).
"""

from repro.experiments import fig5


def test_bench_fig5a_login_series(benchmark, week_result):
    series = benchmark(lambda: fig5.panel(week_result, "a-login", min_samples=5))
    login1, login2 = series

    # Shape: hourly medians exist for most of the week.
    assert len(login1.hours) > 100
    # Flatness: the hourly median band is narrow while load swings.
    assert max(login1.concurrent_users) > 3 * max(1, min(login1.concurrent_users))
    # Correlation: weak, as the paper reports (|r| <= 0.08 measured on
    # production; we allow sampling noise at reduced scale).
    assert abs(login1.correlation) < 0.3
    assert abs(login2.correlation) < 0.3

    print("\n" + fig5.render_panel(week_result, "a-login"))
    print(fig5.paper_comparison(week_result))

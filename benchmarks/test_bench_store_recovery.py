"""Durability cost: crash-recovery time and WAL replay throughput.

The durable-store design note claims manager recovery is a replay of a
bounded WAL over a snapshot -- cheap enough to treat a farm restart as
routine.  This benchmark measures it: a Channel Manager accumulates a
large viewing log through its journal, then is rebuilt from the store,
and we report wall-clock recovery time plus replay throughput in
records per second.
"""

from repro.core.channel_manager import (
    REC_VIEWING_ENTRY,
    ChannelManager,
    ViewingLogEntry,
)
from repro.crypto.drbg import HmacDrbg
from repro.crypto.rsa import generate_keypair
from repro.store import DurableStore, MemoryBackend
from repro.util.wire import Encoder

N_RECORDS = 5000


def _credentials():
    key = generate_keypair(HmacDrbg(b"bench-cm", b"key"), bits=512)
    secret = HmacDrbg(b"bench-cm", b"secret").generate(32)
    return key, secret


def _populated_store(n_records: int) -> DurableStore:
    store = DurableStore(MemoryBackend())
    for i in range(n_records):
        entry = ViewingLogEntry(
            user_id=(i % 500) + 1,
            channel_id=f"ch{i % 40}",
            net_addr=f"10.{(i >> 8) & 0xFF}.{i & 0xFF}.7",
            issued_at=float(i),
            renewal=False,
            expires_at=float(i) + 900.0,
        )
        enc = Encoder()
        entry.encode(enc)
        store.append(REC_VIEWING_ENTRY, enc.to_bytes())
    return store


def test_bench_wal_replay_throughput(benchmark):
    signing_key, farm_secret = _credentials()
    store = _populated_store(N_RECORDS)

    def recover():
        return ChannelManager.recover(
            store,
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=HmacDrbg(farm_secret, b"bench-recovery"),
            user_manager_keys=[],
            partition="default",
        )

    manager = benchmark(recover)

    assert len(manager.viewing_log()) == N_RECORDS
    stats = store.stats
    assert stats.records_replayed == N_RECORDS
    assert stats.recovery_seconds > 0
    throughput = stats.replay_records_per_sec
    # Recovery must be fast enough that farm restarts are routine:
    # well above 10k records/sec on any plausible machine.
    assert throughput > 10_000
    print(
        f"\nWAL replay: {N_RECORDS} records in {stats.recovery_seconds * 1000:.1f} ms "
        f"({throughput:,.0f} records/sec)"
    )


def test_bench_recovery_time_with_snapshot(benchmark):
    """Snapshot + short WAL tail: the steady-state recovery shape."""
    signing_key, farm_secret = _credentials()
    store = _populated_store(N_RECORDS)

    # Fold the log into a snapshot via a recovered manager, then add a
    # short post-snapshot tail -- the state a snapshot_every policy
    # maintains.
    warm = ChannelManager.recover(
        store,
        signing_key=signing_key,
        farm_secret=farm_secret,
        drbg=HmacDrbg(farm_secret, b"bench-warm"),
        user_manager_keys=[],
        partition="default",
    )
    warm.attach_store(store)  # re-attaching folds the log into a snapshot
    for i in range(100):
        entry = ViewingLogEntry(
            user_id=1, channel_id="ch0", net_addr="10.0.0.9",
            issued_at=10_000.0 + i, renewal=False,
        )
        enc = Encoder()
        entry.encode(enc)
        store.append(REC_VIEWING_ENTRY, enc.to_bytes())

    def recover():
        return ChannelManager.recover(
            store,
            signing_key=signing_key,
            farm_secret=farm_secret,
            drbg=HmacDrbg(farm_secret, b"bench-recovery2"),
            user_manager_keys=[],
            partition="default",
        )

    manager = benchmark(recover)

    assert len(manager.viewing_log()) == N_RECORDS + 100
    # Only the tail replays; the bulk arrives via the snapshot.
    assert store.stats.records_replayed == 100
    print(
        f"\nsnapshot recovery: {N_RECORDS}-entry snapshot + 100-record tail "
        f"in {store.stats.recovery_seconds * 1000:.1f} ms"
    )

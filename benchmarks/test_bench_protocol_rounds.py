"""Fig. 4: per-round cost of the real protocol handlers.

Benchmarks the actual functional implementation of each measured round
(the same handlers the calibration module times) and verifies the
protocol's round structure: login = 2 exchanges, switch = 2 exchanges,
join = 1 exchange.  These measured costs are what ground the week-long
simulation's service times (DESIGN.md substitution table).
"""

import itertools

import pytest

from repro.core.challenge import answer_challenge
from repro.core.protocol import JoinRequest, Login1Request, Switch1Request, Switch2Request
from repro.deployment import Deployment


@pytest.fixture(scope="module")
def env():
    deployment = Deployment(seed=3)
    deployment.add_free_channel("bench", regions=["CH"])
    client = deployment.create_client("bench@example.org", "pw", region="CH")
    client.login(now=0.0)
    response = client.switch_channel("bench", now=0.0)
    peer = deployment.make_peer(client, "bench", capacity=10**9)
    deployment.overlay("bench").join(peer, response.peers, now=0.0)
    return deployment, client, peer


def test_bench_round_login1(benchmark, env):
    deployment, client, _ = env
    manager = deployment.user_managers["domain-0"]
    request = Login1Request(email=client.email, client_public_key=client.public_key)
    benchmark(lambda: manager.login1(request, 0.0))


def test_bench_round_full_login_two_exchanges(benchmark, env):
    deployment, client, _ = env
    benchmark(lambda: client.login(now=0.0))


def test_bench_round_switch1(benchmark, env):
    deployment, client, _ = env
    manager = deployment.channel_manager_for("bench")
    request = Switch1Request(user_ticket=client.user_ticket, channel_id="bench")
    benchmark(lambda: manager.switch1(request, 0.0))


def test_bench_round_switch2(benchmark, env):
    deployment, client, _ = env
    manager = deployment.channel_manager_for("bench")
    request1 = Switch1Request(user_ticket=client.user_ticket, channel_id="bench")

    def run():
        token = manager.switch1(request1, 0.0).token
        signature = answer_challenge(token, client.private_key)
        return manager.switch2(
            Switch2Request(
                user_ticket=client.user_ticket,
                token=token,
                signature=signature,
                channel_id="bench",
            ),
            observed_addr=client.net_addr,
            now=0.0,
        )

    response = benchmark(run)
    assert response.ticket.channel_id == "bench"


def test_bench_round_join(benchmark, env):
    deployment, client, peer = env
    request = JoinRequest(channel_ticket=client.channel_ticket)

    def run():
        return peer.handle_join(request, observed_addr=client.net_addr, now=0.0)

    from repro.core.protocol import JoinAccept

    result = benchmark(run)
    assert isinstance(result, JoinAccept)

"""Fig. 6(a): CDF of login latencies, peak vs off-peak hours.

"For all three protocols, the CDF distribution curves from the two
separate time periods are virtually identical."  Quantified here by
the two-sample KS distance and per-quantile gaps.
"""

from repro.experiments import fig6


def test_bench_fig6a_login_cdfs(benchmark, week_result):
    comparisons = benchmark(lambda: fig6.panel(week_result, "a-login"))
    for comparison in comparisons:
        assert comparison.peak_count > 1000
        assert comparison.offpeak_count > 1000
        # Virtually identical distributions.
        assert comparison.ks < 0.06, (comparison.round_name, comparison.ks)
        # Median gap far inside the visual resolution of the figure.
        median_gap = next(abs(p - o) for q, p, o in comparison.quantiles if q == 0.5)
        assert median_gap < 0.03

    print("\n" + fig6.render_panel(week_result, "a-login"))

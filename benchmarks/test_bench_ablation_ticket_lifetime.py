"""Ablation A5: ticket lifetime vs renewal load and policy lead time.

Sections IV-B/IV-C: shorter tickets bound the usefulness of a stolen
ticket and shorten the minimum lead time for deploying new viewing
policies (the blackout rule), at the price of renewal traffic.  The
analytic dial is cross-checked against renewal counts measured from a
generated workload week.
"""

import random

from repro.experiments.ablations import ticket_lifetime_tradeoff
from repro.metrics.reporting import format_table
from repro.workload.traces import OP_RENEW, WeekTraceGenerator


def test_bench_ablation_ticket_lifetime_dial(benchmark):
    rows = benchmark(lambda: ticket_lifetime_tradeoff(lifetimes=(300.0, 900.0, 1800.0, 3600.0)))
    table = [
        (r.lifetime, f"{r.renewals_per_viewer_hour:.1f}",
         f"{r.blackout_lead_time:.0f}s", f"{r.stolen_ticket_usefulness:.0f}s")
        for r in rows
    ]
    print("\nA5 — ticket lifetime dial")
    print(format_table(
        ["lifetime (s)", "renewals/viewer-hour", "blackout lead", "stolen-ticket window"],
        table,
    ))


def test_bench_ablation_ticket_lifetime_measured(benchmark):
    """Renewal traffic measured from generated weeks at two lifetimes."""

    def measure(lifetime: float) -> float:
        trace = WeekTraceGenerator(
            rng=random.Random(17),
            peak_concurrent=60,
            n_channels=10,
            horizon=86400.0,
            channel_ticket_lifetime=lifetime,
        ).generate()
        viewer_hours = sum(e - s for s, e in trace.sessions) / 3600.0
        return trace.count_of(OP_RENEW) / max(1e-9, viewer_hours)

    def run():
        return measure(300.0), measure(1800.0)

    short_rate, long_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    # Shorter lifetime => proportionally more renewals (long dwells
    # dominate renewal counts; ratio lands well above 3x for a 6x dial).
    assert short_rate > long_rate * 3
    print(
        f"\nA5 measured: {short_rate:.2f} renewals/viewer-hour @300 s vs "
        f"{long_rate:.2f} @1800 s"
    )

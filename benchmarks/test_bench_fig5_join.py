"""Fig. 5(c): median JOIN latency vs. total concurrent users.

The paper's one mildly load-coupled round: "Pearson ... is 0.13 for
join protocol.  Although join protocol overhead exhibits slightly
higher dependence on total system usage, its correlation can still be
considered weak."  The mechanism -- busier overlays mean more
at-capacity candidate peers, hence occasional retries -- is what the
simulation reproduces, and the bench asserts the same ordering:
join's r positive and larger than the server rounds', yet weak.
"""

from repro.experiments import fig5


def test_bench_fig5c_join_series(benchmark, week_result):
    series = benchmark(lambda: fig5.panel(week_result, "c-join", min_samples=5))
    (join,) = series

    assert len(join.hours) > 100
    # The paper's shape: positive but weak (0.13 in production).
    assert 0.0 < join.correlation < 0.45
    # And larger than the (noise-level) server-round correlations on
    # average magnitude.
    server_rs = [
        abs(week_result.correlation(name, min_samples=5))
        for name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2")
    ]
    assert join.correlation > sum(server_rs) / len(server_rs) - 0.05

    print("\n" + fig5.render_panel(week_result, "c-join"))

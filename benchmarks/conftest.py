"""Shared fixtures for the benchmark suite.

The week-long simulation is the substrate of every Fig. 5 / Fig. 6
bench; it runs once per session here and the figure benches time their
extraction/analysis passes over the shared result.  The simulation
itself is timed by ``test_bench_weeklong_engine.py``.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongResult, WeeklongRunner


#: The benchmark-scale measurement week: structurally faithful to the
#: paper's (diurnal shape, peak/off-peak split, farm sizing of 2 UMs +
#: 2x2 CMs) at a reduced audience so the suite completes in minutes.
BENCH_CONFIG = WeeklongConfig(peak_concurrent=250, n_channels=40)


@pytest.fixture(scope="session")
def week_result() -> WeeklongResult:
    """One simulated measurement week shared by every figure bench."""
    return WeeklongRunner(BENCH_CONFIG).run()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20080623)

"""Data-plane fast path: before/after throughput of the media cipher.

The steady-state cost of the system is the data plane: every media
frame is sealed once at the Channel Server and opened at every viewing
peer, 25 frames/s across the whole audience (Section IV-E).  This
benchmark measures that path under two configurations:

* **before** -- the seed implementation, retained verbatim as
  :func:`~repro.crypto.stream.legacy_encrypt` /
  :func:`~repro.crypto.stream.legacy_decrypt`: SHA-256-CTR keystream
  rebuilt from scratch per 32-byte block, per-byte generator XOR,
  fresh HMAC per tag, one packet sealed per call;
* **after** -- the shipped fast path: cached XOF prefix state squeezed
  in one C-level call, wide XOR, copied HMAC states, and whole-GOP
  batch sealing (:meth:`SymmetricKey.encrypt_many`).

Four stages are measured at the 4 kB frame size (800 kbit/s at
25 frames/s): seal, open, the end-to-end packet storm from
``test_bench_rpc_storm`` (seal + forward + open across a 16-viewer
overlay), and the per-link key fan-out.  Results go to
``BENCH_dataplane.json`` at the repo root.

``DATAPLANE_BENCH_ITERS`` scales the iteration count; the strict >=10x
acceptance bound only applies at full iterations (CI smoke runs are
too short for stable ratios and assert a loose sanity bound instead).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import (
    SymmetricKey,
    legacy_decrypt,
    legacy_encrypt,
    reference_encrypt,
)
from repro.metrics.dataplane import counters

from .test_bench_rpc_storm import build_packet_storm, run_packet_storm

ITERS = int(os.environ.get("DATAPLANE_BENCH_ITERS", "200"))
FULL_RUN = ITERS >= 150
FRAME = 4096
GOP = 12
FANOUT_LINKS = 32
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_dataplane.json"


def _mb_per_second(fn, bytes_per_call: int, iters: int, repeats: int = 3) -> float:
    """Best-of-N throughput in MB/s (best run suppresses scheduler noise)."""
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return iters * bytes_per_call / best / 1e6


def _entry(before: float, after: float, unit: str = "MB_per_s") -> dict:
    return {
        f"before_{unit}": round(before, 2),
        f"after_{unit}": round(after, 2),
        "speedup": round(after / before, 2),
    }


def test_bench_dataplane_seal_open_forward_fanout():
    key = SymmetricKey.generate(HmacDrbg(b"dataplane-bench"))
    frames = [bytes([i & 0xFF]) * FRAME for i in range(GOP)]
    nonces = list(range(GOP))
    aad = b"bench-channel"
    results = {}

    # --- equivalence sanity: the measured fast path is the pinned
    # construction, and the retained baseline still roundtrips --------
    for frame, nonce in zip(frames[:2], nonces[:2]):
        assert key.encrypt(frame, nonce, aad) == reference_encrypt(key, frame, nonce, aad)
    assert legacy_decrypt(key, legacy_encrypt(key, frames[0], 0, aad), 0, aad) == frames[0]

    # --- seal: whole-GOP batch vs the per-frame legacy loop ----------
    def seal_after():
        key.encrypt_many(frames, nonces, aad=aad)

    def seal_before():
        for frame, nonce in zip(frames, nonces):
            legacy_encrypt(key, frame, nonce, aad)

    gop_bytes = GOP * FRAME
    counters.reset()
    after = _mb_per_second(seal_after, gop_bytes, ITERS)
    sealed_blocks = counters.keystream_blocks
    before = _mb_per_second(seal_before, gop_bytes, max(ITERS // 10, 3))
    results["seal_4k"] = _entry(before, after)

    # --- counter balance: the fast path did exactly the stated work --
    # (warmup + N repeats of the timed loop, GOP frames each).
    calls = sealed_blocks // (GOP * FRAME // 32)
    assert sealed_blocks == calls * GOP * (FRAME // 32), counters.snapshot()
    assert calls >= ITERS + 1

    # --- open: fast decrypt vs the legacy loop -----------------------
    fast_cts = key.encrypt_many(frames, nonces, aad=aad)
    legacy_cts = [legacy_encrypt(key, f, n, aad) for f, n in zip(frames, nonces)]

    def open_after():
        for ct, nonce in zip(fast_cts, nonces):
            key.decrypt(ct, nonce, aad)

    def open_before():
        for ct, nonce in zip(legacy_cts, nonces):
            legacy_decrypt(key, ct, nonce, aad)

    after = _mb_per_second(open_after, gop_bytes, ITERS)
    before = _mb_per_second(open_before, gop_bytes, max(ITERS // 10, 3))
    results["open_4k"] = _entry(before, after)

    # --- forward: end-to-end storm over a 16-viewer overlay ----------
    n_packets = max(ITERS // 2, 12)
    deployment, overlay, peers = build_packet_storm()
    storm_bytes = n_packets * FRAME
    after_s = min(run_packet_storm(overlay, n_packets, gop=GOP) for _ in range(2))
    fast_encrypt, fast_decrypt = SymmetricKey.encrypt, SymmetricKey.decrypt
    SymmetricKey.encrypt = lambda self, pt, nonce, aad=b"": legacy_encrypt(self, pt, nonce, aad)
    SymmetricKey.decrypt = lambda self, ct, nonce, aad=b"": legacy_decrypt(self, ct, nonce, aad)
    try:
        before_s = min(run_packet_storm(overlay, n_packets, gop=0) for _ in range(2))
    finally:
        SymmetricKey.encrypt, SymmetricKey.decrypt = fast_encrypt, fast_decrypt
    results["forward_storm"] = _entry(
        storm_bytes / before_s / 1e6, storm_bytes / after_s / 1e6
    )
    results["forward_storm"]["viewers"] = len(peers)
    results["forward_storm"]["packets"] = n_packets

    # --- key fan-out: batched re-encrypt vs the per-link loop --------
    from repro.core.keystream import ContentKey
    from repro.core.packets import reencrypt_key_for_link, reencrypt_key_for_links

    drbg = HmacDrbg(b"fanout-bench")
    content_key = ContentKey(serial=1, key=SymmetricKey.generate(drbg), activate_at=0.0)
    session_keys = [SymmetricKey.generate(drbg) for _ in range(FANOUT_LINKS)]

    def fanout_after():
        reencrypt_key_for_links(content_key, session_keys, "bench-channel")

    def fanout_before():
        for sk in session_keys:
            reencrypt_key_for_link(content_key, sk, "bench-channel")

    after_ops = _mb_per_second(fanout_after, FANOUT_LINKS, ITERS) * 1e6
    SymmetricKey.encrypt = lambda self, pt, nonce, aad=b"": legacy_encrypt(self, pt, nonce, aad)
    try:
        before_ops = _mb_per_second(fanout_before, FANOUT_LINKS, ITERS) * 1e6
    finally:
        SymmetricKey.encrypt = fast_encrypt
    results["key_fanout"] = _entry(before_ops, after_ops, unit="links_per_s")

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "dataplane",
                "config": {
                    "iters": ITERS,
                    "frame_bytes": FRAME,
                    "gop": GOP,
                    "fanout_links": FANOUT_LINKS,
                },
                "results": results,
            },
            indent=2,
        )
        + "\n"
    )

    # The acceptance bar for this PR: >=10x seal and open throughput at
    # the 4 kB frame size.  Smoke runs (small DATAPLANE_BENCH_ITERS)
    # assert a loose sanity bound instead -- short loops on shared CI
    # runners are too noisy for a strict ratio.
    min_speedup = 10.0 if FULL_RUN else 2.0
    assert results["seal_4k"]["speedup"] >= min_speedup, results["seal_4k"]
    assert results["open_4k"]["speedup"] >= min_speedup, results["open_4k"]
    assert results["forward_storm"]["speedup"] >= 1.5, results["forward_storm"]
    assert results["key_fanout"]["speedup"] >= 1.0, results["key_fanout"]

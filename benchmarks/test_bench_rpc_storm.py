"""Highest-fidelity storm: real protocol messages under virtual time.

A flash crowd of AsyncClients performs the *functional* login protocol
(genuine RSA, genuine attestation) as messages over the virtual WAN
against a queued User Manager farm.  The emergent LOGIN round
latencies combine one-way delays, farm queueing, and measured client
compute -- the message-level counterpart of the Fig. 5 timing model,
and a cross-check on ablation A1's farm-scaling claim.
"""

import random
import time

from repro.crypto.drbg import HmacDrbg
from repro.crypto.stream import SymmetricKey, legacy_decrypt, legacy_encrypt
from repro.deployment import Deployment
from repro.metrics.stats import median, percentile
from repro.sim.driver import AsyncClient, wire_user_manager
from repro.sim.engine import Simulator
from repro.sim.network import LatencyModel, RegionRtt
from repro.sim.rpc import VirtualNetwork
from repro.sim.station import ServiceStation

CROWD = 40
RTT = 0.1


def run_storm(n_servers: int):
    deployment = Deployment(seed=61)
    deployment.add_free_channel("storm", regions=["CH"])
    sim = Simulator()
    latency = LatencyModel(
        random.Random(7),
        table={("CH", "dc"): RegionRtt(base_rtt=RTT, sigma=0.05, slow_path_prob=0.0)},
    )
    network = VirtualNetwork(sim, latency, random.Random(8))
    station = ServiceStation(
        sim, n_servers=n_servers, mean_service_time=0.02, rng=random.Random(9)
    )
    wire_user_manager(
        network, deployment.user_managers["domain-0"], "rpc://um", station=station
    )
    clients = []
    for i in range(CROWD):
        email = f"storm{i}@example.org"
        deployment.accounts.register(email, "pw")
        clients.append(
            AsyncClient(
                network=network, email=email, password="pw",
                version=deployment.client_version, image=deployment.client_image,
                net_addr=deployment.geo.random_address("CH", deployment.rng),
                region="CH", drbg=HmacDrbg(email.encode()),
            )
        )
    done = []
    arrival_rng = random.Random(10)
    for client in clients:
        offset = arrival_rng.expovariate(3.0 / 2.0)  # ~2 s crowd window
        sim.schedule(
            offset,
            lambda s, c=client: c.start_login("rpc://um", on_done=lambda: done.append(s.now)),
        )
    sim.run()
    latencies = [
        lat for c in clients for lat in c.collector.latencies("LOGIN2")
    ]
    return len(done), latencies


def build_packet_storm(n_viewers: int = 16):
    """A connected overlay ready for a data-plane storm.

    Setup (logins, SWITCH rounds, joins) happens outside the timed
    region -- the storm itself is pure data plane: seal at the source,
    forward down the tree, open at every peer.
    """
    deployment = Deployment(seed=62)
    deployment.add_free_channel("packet-storm", regions=["CH"])
    overlay = deployment.overlay("packet-storm")
    peers = []
    for i in range(n_viewers):
        client = deployment.create_client(
            f"pkt{i}@example.org", "pw", region="CH"
        )
        client.login(now=1.0)
        peers.append(deployment.watch(client, "packet-storm", now=1.0, capacity=4))
    return deployment, overlay, peers


def run_packet_storm(overlay, n_packets: int, gop: int = 0) -> float:
    """Broadcast ``n_packets`` 4 kB frames; returns elapsed seconds.

    ``gop > 0`` uses the batched GOP path (``broadcast_packets``);
    ``gop == 0`` uses the per-packet path the seed shipped.
    """
    start = time.perf_counter()
    if gop > 0:
        for _ in range(0, n_packets, gop):
            overlay.source.broadcast_packets(2.0, gop)
    else:
        for _ in range(n_packets):
            overlay.source.broadcast_packet(2.0)
    return time.perf_counter() - start


def test_bench_rpc_packet_storm():
    """End-to-end data-plane speedup: the vectorized cipher plus GOP
    batching against the seed configuration (legacy SHA-256-CTR cipher,
    per-packet emission) on an identical overlay."""
    n_packets = 120
    deployment, overlay, peers = build_packet_storm()
    baseline_decrypted = peers[0].client.packets_decrypted

    after = min(run_packet_storm(overlay, n_packets, gop=12) for _ in range(2))
    for peer in peers:
        assert peer.client.packets_decrypted - baseline_decrypted == 2 * n_packets

    fast_encrypt, fast_decrypt = SymmetricKey.encrypt, SymmetricKey.decrypt
    SymmetricKey.encrypt = lambda self, pt, nonce, aad=b"": legacy_encrypt(self, pt, nonce, aad)
    SymmetricKey.decrypt = lambda self, ct, nonce, aad=b"": legacy_decrypt(self, ct, nonce, aad)
    try:
        before = min(run_packet_storm(overlay, n_packets, gop=0) for _ in range(2))
    finally:
        SymmetricKey.encrypt, SymmetricKey.decrypt = fast_encrypt, fast_decrypt

    speedup = before / after
    print(
        f"\nPacket storm ({n_packets} x 4 kB frames, {len(peers)} viewers): "
        f"before {before * 1000:.0f} ms, after {after * 1000:.0f} ms, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, (before, after)


def test_bench_rpc_login_storm(benchmark):
    completed, latencies = benchmark.pedantic(
        lambda: run_storm(n_servers=2), rounds=1, iterations=1
    )
    assert completed == CROWD
    assert median(latencies) < 1.0  # WAN + modest queueing
    # Cross-check the farm-scaling claim at message level: one server
    # under the same crowd queues measurably worse at the tail.
    _, single = run_storm(n_servers=1)
    assert percentile(single, 95) >= percentile(latencies, 95)
    print(
        f"\nRPC storm ({CROWD} logins, 2-server farm): median LOGIN2 "
        f"{median(latencies) * 1000:.0f} ms, p95 {percentile(latencies, 95) * 1000:.0f} ms; "
        f"1-server p95 {percentile(single, 95) * 1000:.0f} ms"
    )

"""Overlay locality: ranked vs uniform peer lists under a flash crowd.

The Channel Manager's ranked peer-list pipeline (same-AS, same-region,
spare upload capacity) only earns its keep if it visibly shortens the
join path under the workload that stresses it: a flash-crowd ramp with
mid-event churn.  This benchmark runs the same audience through both
arms of :func:`repro.p2p.storm.run_storm_comparison` -- the real
control plane end to end (redirection, LOGIN, SWITCH1/2, JOIN
admission, churn repair), every exchange priced by the WAN latency
model on a virtual clock -- and compares:

* **p99 join latency** (redirect -> first decryptable packet), with
  the traced REDIRECT/SWITCH/JOIN/FIRSTPKT phase breakdown;
* **repair time** after mid-event departures, and what fraction of
  repairs land in-region;
* key-distribution latency along the actual parent chains, tree depth,
  and parent locality.

Acceptance: the ranked arm must beat the uniform arm on p99 join
latency AND mean repair time.  ``OVERLAY_BENCH_VIEWERS`` scales the
audience (CI smoke uses a few hundred; the committed result is a
10k-viewer run) and ``OVERLAY_BENCH_SEED`` the seed.  Results go to
``BENCH_overlay_locality.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.p2p.storm import OverlayStormConfig, run_storm_comparison
from repro.trace.report import join_breakdown

VIEWERS = int(os.environ.get("OVERLAY_BENCH_VIEWERS", "1200"))
SEED = int(os.environ.get("OVERLAY_BENCH_SEED", "20110620"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_overlay_locality.json"
FULL_RUN = VIEWERS >= 1200


def _phase_table(result) -> dict:
    return {
        str(row["phase"]): {
            "count": row["count"],
            "p50": round(row["p50"], 4),
            "p99": round(row["p99"], 4),
            "mean": round(row["mean"], 4),
        }
        for row in join_breakdown(result.tracer.spans)
    }


def test_bench_overlay_locality_ranked_beats_uniform():
    config = OverlayStormConfig(viewers=VIEWERS, seed=SEED)
    arms = run_storm_comparison(config)
    ranked = arms["ranked"].as_dict()
    uniform = arms["uniform"].as_dict()

    payload = {
        "benchmark": "overlay_locality",
        "config": {
            "viewers": VIEWERS,
            "seed": SEED,
            "regions": list(config.regions),
            "event_duration": config.event_duration,
            "ramp": config.ramp,
            "mid_departure_fraction": config.mid_departure_fraction,
            "source_capacity": config.source_capacity,
            "full_run": FULL_RUN,
        },
        "results": {
            "ranked": {**ranked, "join_phases": _phase_table(arms["ranked"])},
            "uniform": {**uniform, "join_phases": _phase_table(arms["uniform"])},
        },
        "acceptance": {
            "ranked_join_p99": ranked["join_latency"]["p99"],
            "uniform_join_p99": uniform["join_latency"]["p99"],
            "ranked_repair_mean": ranked["repair_time"]["mean"],
            "uniform_repair_mean": uniform["repair_time"]["mean"],
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Both arms must actually have run the whole storm.
    for name, arm in (("ranked", ranked), ("uniform", uniform)):
        assert arm["joined"] > 0, name
        assert arm["repair_time"]["count"] > 0, f"{name}: churn produced no repairs"

    assert (
        ranked["join_latency"]["p99"] < uniform["join_latency"]["p99"]
    ), payload["acceptance"]
    assert (
        ranked["repair_time"]["mean"] < uniform["repair_time"]["mean"]
    ), payload["acceptance"]
    # Locality and tree shape must move the right way too.
    assert ranked["parent_locality"] > uniform["parent_locality"]
    assert ranked["mean_depth"] < uniform["mean_depth"]

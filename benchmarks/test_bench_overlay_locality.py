"""Overlay locality: ranked vs uniform peer lists under a flash crowd.

The Channel Manager's ranked peer-list pipeline (same-AS, same-region,
spare upload capacity) only earns its keep if it visibly shortens the
join path under the workload that stresses it: a flash-crowd ramp with
mid-event churn.  This benchmark runs the same audience through both
arms of :func:`repro.p2p.storm.run_storm_comparison` -- the real
control plane end to end (redirection, LOGIN, SWITCH1/2, JOIN
admission, churn repair), every exchange priced by the WAN latency
model on a virtual clock -- and compares:

* **p99 join latency** (redirect -> first decryptable packet), with
  the traced REDIRECT/SWITCH/JOIN/FIRSTPKT phase breakdown;
* **repair time** after mid-event departures, and what fraction of
  repairs land in-region;
* key-distribution latency along the actual parent chains, tree depth,
  and parent locality.

Acceptance: the ranked arm must beat the uniform arm on p99 join
latency AND mean repair time.  A second test pins the *scaling curve*
that motivated the :class:`~repro.p2p.index.CandidateIndex`: indexed
ranked storms at 1x / 3x / 10x the base audience, with the
selection-plane counters showing per-request candidate work stays
near-flat while the O(n) scan reference's grows with the membership
(both are also wall-clock probed on the final overlay of each size).

``OVERLAY_BENCH_VIEWERS`` scales the audience (CI smoke uses a few
hundred; the committed result is a 10k-viewer comparison with a
10k/30k/100k curve) and ``OVERLAY_BENCH_SEED`` the seed.  Results go
to ``BENCH_overlay_locality.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

from repro.metrics.selection import counters
from repro.p2p.selection import RankedPeerListProvider
from repro.p2p.storm import OverlayStormConfig, run_overlay_storm, run_storm_comparison
from repro.trace.report import join_breakdown

VIEWERS = int(os.environ.get("OVERLAY_BENCH_VIEWERS", "1200"))
SEED = int(os.environ.get("OVERLAY_BENCH_SEED", "20110620"))
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_overlay_locality.json"
FULL_RUN = VIEWERS >= 1200


def _phase_table(result) -> dict:
    return {
        str(row["phase"]): {
            "count": row["count"],
            "p50": round(row["p50"], 4),
            "p99": round(row["p99"], 4),
            "mean": round(row["mean"], 4),
        }
        for row in join_breakdown(result.tracer.spans)
    }


def test_bench_overlay_locality_ranked_beats_uniform():
    config = OverlayStormConfig(viewers=VIEWERS, seed=SEED)
    arms = run_storm_comparison(config)
    ranked = arms["ranked"].as_dict()
    uniform = arms["uniform"].as_dict()

    payload = {
        "benchmark": "overlay_locality",
        "config": {
            "viewers": VIEWERS,
            "seed": SEED,
            "regions": list(config.regions),
            "event_duration": config.event_duration,
            "ramp": config.ramp,
            "mid_departure_fraction": config.mid_departure_fraction,
            "source_capacity": config.source_capacity,
            "full_run": FULL_RUN,
        },
        "results": {
            "ranked": {**ranked, "join_phases": _phase_table(arms["ranked"])},
            "uniform": {**uniform, "join_phases": _phase_table(arms["uniform"])},
        },
        "acceptance": {
            "ranked_join_p99": ranked["join_latency"]["p99"],
            "uniform_join_p99": uniform["join_latency"]["p99"],
            "ranked_repair_mean": ranked["repair_time"]["mean"],
            "uniform_repair_mean": uniform["repair_time"]["mean"],
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # Both arms must actually have run the whole storm.
    for name, arm in (("ranked", ranked), ("uniform", uniform)):
        assert arm["joined"] > 0, name
        assert arm["repair_time"]["count"] > 0, f"{name}: churn produced no repairs"

    assert (
        ranked["join_latency"]["p99"] < uniform["join_latency"]["p99"]
    ), payload["acceptance"]
    assert (
        ranked["repair_time"]["mean"] < uniform["repair_time"]["mean"]
    ), payload["acceptance"]
    # Locality and tree shape must move the right way too.
    assert ranked["parent_locality"] > uniform["parent_locality"]
    assert ranked["mean_depth"] < uniform["mean_depth"]


# ----------------------------------------------------------------------
# Scaling curve: indexed per-request cost vs audience size
# ----------------------------------------------------------------------

#: Audience multipliers for the curve (1200 -> 1.2k/3.6k/12k smoke;
#: the committed run uses OVERLAY_BENCH_VIEWERS=10000 -> 10k/30k/100k).
CURVE = (1, 3, 10)
PROBE_CALLS = 40


def _probe(deployment, channel, regions, use_index):
    """Time PROBE_CALLS ranked list requests against the final overlay
    and report mean wall microseconds and candidates per request."""
    provider = RankedPeerListProvider(
        deployment.overlays, deployment.geo, random.Random(1), use_index=use_index
    )
    rng = random.Random(4)
    addrs = [
        deployment.geo.random_address(regions[i % len(regions)], rng)
        for i in range(PROBE_CALLS)
    ]
    mark = counters.snapshot()
    start = time.perf_counter()
    for addr in addrs:
        provider(channel, addr, 8)
    elapsed = time.perf_counter() - start
    delta = counters.delta_since(mark)
    return {
        "mean_us_per_call": round(elapsed / PROBE_CALLS * 1e6, 1),
        "candidates_per_request": round(
            delta["candidates_considered"] / delta["requests"], 2
        ),
    }


def test_bench_overlay_index_scaling_curve():
    curve = {}
    for multiplier in CURVE:
        viewers = VIEWERS * multiplier
        config = OverlayStormConfig(viewers=viewers, seed=SEED)
        start = time.perf_counter()
        result = run_overlay_storm(config)
        wall = time.perf_counter() - start
        overlay = result.deployment.overlay(config.channel)
        overlay.index.verify_against(overlay)  # the storm never drifted
        arm = result.as_dict()
        curve[str(viewers)] = {
            "wall_s": round(wall, 2),
            "joined": arm["joined"],
            "join_failures": arm["join_failures"],
            "join_p99": arm["join_latency"]["p99"],
            "members_at_end": len(overlay.peers),
            "storm_candidates_per_request": arm["candidates_per_request"],
            "selection": arm["selection"],
            "probe_indexed": _probe(
                result.deployment, config.channel, list(config.regions), True
            ),
            "probe_scan": _probe(
                result.deployment, config.channel, list(config.regions), False
            ),
        }

    sizes = [str(VIEWERS * m) for m in CURVE]
    small, large = curve[sizes[0]], curve[sizes[-1]]
    payload = json.loads(RESULT_PATH.read_text()) if RESULT_PATH.exists() else {
        "benchmark": "overlay_locality"
    }
    payload["scaling"] = {
        "multipliers": list(CURVE),
        "base_viewers": VIEWERS,
        "curve": curve,
        "acceptance": {
            "indexed_growth": round(
                large["storm_candidates_per_request"]
                / small["storm_candidates_per_request"],
                2,
            ),
            "scan_growth": round(
                large["probe_scan"]["candidates_per_request"]
                / max(1.0, small["probe_scan"]["candidates_per_request"]),
                2,
            ),
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    for size in sizes:
        entry = curve[size]
        assert entry["joined"] > 0.9 * int(size), (size, entry)
    # The pin: per-request candidate work is near-flat for the index
    # (a 10x audience may not even double it) while the scan reference
    # examines the whole membership -- its per-request count must grow
    # at least half as fast as the audience did.
    growth = payload["scaling"]["acceptance"]
    assert growth["indexed_growth"] <= 2.0, growth
    if FULL_RUN:
        assert growth["scan_growth"] >= CURVE[-1] / 2, growth

"""Fig. 6(b): CDF of channel-switch latencies, peak vs off-peak hours."""

from repro.experiments import fig6


def test_bench_fig6b_switch_cdfs(benchmark, week_result):
    comparisons = benchmark(lambda: fig6.panel(week_result, "b-switch"))
    for comparison in comparisons:
        assert comparison.ks < 0.06, (comparison.round_name, comparison.ks)

    # The figure's viewing-experience subtext (Section II: switching
    # "similar to TV services provided by satellite (around 3
    # seconds)"): the overwhelming majority of switch rounds complete
    # well inside that budget, in both periods.
    for round_name in ("SWITCH1", "SWITCH2"):
        peak_frac, off_frac = fig6.fraction_under(week_result, round_name, 3.0)
        assert peak_frac > 0.97
        assert off_frac > 0.97

    print("\n" + fig6.render_panel(week_result, "b-switch"))

"""Table I: common user attributes.

Benchmarks the User Manager's attribute-generation path (the
machinery behind Table I) through a full login, and checks that every
attribute the table lists is generated with the right semantics.
"""

from repro.core.attributes import (
    ATTR_AS,
    ATTR_NETADDR,
    ATTR_REGION,
    ATTR_SUBSCRIPTION,
    ATTR_VERSION,
)
from repro.deployment import Deployment
from repro.metrics.reporting import format_table

#: Table I of the paper, verbatim.
TABLE1 = [
    (ATTR_NETADDR, "The network address of the user"),
    (ATTR_REGION, "The geographic region the user connects from"),
    (ATTR_AS, "The network the user connects from"),
    (ATTR_VERSION, "The client version number"),
    (ATTR_SUBSCRIPTION, "A package the user has subscribed to"),
]


def test_bench_table1_attribute_generation(benchmark):
    deployment = Deployment(seed=1)
    deployment.add_free_channel("ch", regions=["DE"])
    deployment.accounts.register("table1@example.org", "pw")
    deployment.accounts.subscribe("table1@example.org", "101")
    client = deployment.create_client(
        "table1@example.org", "pw", region="DE", register=False
    )

    counter = iter(range(10**9))

    def login_once():
        return client.login(now=float(next(counter)))

    ticket = benchmark(login_once)

    generated = {a.name: a.value for a in ticket.attributes}
    for name, _description in TABLE1:
        assert name in generated, f"Table I attribute {name} missing"
    # Semantics spot-checks:
    assert generated[ATTR_NETADDR] == client.net_addr
    assert generated[ATTR_REGION] == "DE"
    assert generated[ATTR_AS].isdigit()
    assert generated[ATTR_VERSION] == deployment.client_version
    assert generated[ATTR_SUBSCRIPTION] == "101"

    rows = [(name, generated[name], desc) for name, desc in TABLE1]
    print("\nTable I — generated user attributes")
    print(format_table(["Attribute", "Generated value", "Description (paper)"], rows))

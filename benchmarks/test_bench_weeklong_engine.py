"""Benchmark: the simulated measurement week itself.

Times one full seven-day replay (trace generation + event-driven farm
simulation + latency collection) at a reduced audience scale.  This is
the engine behind every Fig. 5 / Fig. 6 number.
"""

from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner


def test_bench_weeklong_engine(benchmark):
    config = WeeklongConfig(peak_concurrent=80, n_channels=15)

    def run():
        return WeeklongRunner(config).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    # Sanity: the run produced samples for all five measured rounds.
    for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN"):
        assert result.collector.count(round_name) > 1000, round_name
    print(
        f"\nweek simulated: {len(result.trace.sessions)} sessions, "
        f"{len(result.trace.events)} protocol events, "
        f"UM utilization {result.um_utilization:.4f}"
    )

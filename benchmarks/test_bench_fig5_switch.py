"""Fig. 5(b): median SWITCH1/SWITCH2 latency vs. total concurrent users.

Includes renewals: Channel Ticket renewal runs the same two rounds
(Section IV-D), so its samples land in the same series -- as they did
in the production feedback logs.
"""

from repro.experiments import fig5


def test_bench_fig5b_switch_series(benchmark, week_result):
    series = benchmark(lambda: fig5.panel(week_result, "b-switch", min_samples=5))
    switch1, switch2 = series

    assert len(switch1.hours) > 100
    # The switch series carries the renewal traffic too, so it has more
    # samples than logins.
    assert week_result.collector.count("SWITCH1") > week_result.collector.count("LOGIN1")
    # Weak correlation with load (paper band: -0.03 .. 0.08).
    assert abs(switch1.correlation) < 0.3
    assert abs(switch2.correlation) < 0.3
    # SWITCH2 does the heaviest server work (policy eval + signing) but
    # the median is still WAN-dominated: within 2x of SWITCH1's.
    from repro.metrics.stats import median

    m1 = median(week_result.collector.latencies("SWITCH1"))
    m2 = median(week_result.collector.latencies("SWITCH2"))
    assert m2 < 2.0 * m1

    print("\n" + fig5.render_panel(week_result, "b-switch"))

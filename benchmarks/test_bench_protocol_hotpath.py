"""Hot-path ticket pipeline: before/after throughput of PR 2's fast paths.

The paper's central scaling claim (Fig. 5) is that protocol latency
stays flat while the audience grows to Zattoo scale; per-request
manager cost is the lever.  This benchmark measures the manager-side
throughput of the latency-critical rounds under two configurations of
the *same* handlers:

* **before** -- the pre-PR configuration: signing key stripped of its
  CRT components, ticket verification cache disabled, and policy
  evaluation through the uncached :func:`evaluate_policies` path
  (per-call sort + linear attribute scans);
* **after** -- the shipped configuration: CRT signing, the
  verification cache, and the compiled per-record policy index.

Results (ops/s per round, speedups, hotpath counter snapshots) are
written to ``BENCH_protocol_hotpath.json`` at the repo root so the
trajectory of the hot path is recorded alongside the code.

``HOTPATH_BENCH_ITERS`` scales the iteration count (CI smoke uses a
small value; the default is sized for stable local numbers).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.core.challenge import answer_challenge
from repro.core.channel_manager import ChannelManager
from repro.core.policy import evaluate_policies
from repro.core.protocol import Switch1Request, Switch2Request
from repro.crypto.drbg import HmacDrbg
from repro.deployment import Deployment
from repro.metrics.hotpath import counters

ITERS = int(os.environ.get("HOTPATH_BENCH_ITERS", "300"))
CHANNEL = "hot-bench"
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_protocol_hotpath.json"


class _UncompiledPlan:
    """Restores the pre-PR evaluation path for one channel record.

    Installed in a record's compiled-index slot, it satisfies the
    ``compiled()`` contract but answers every call the way the old
    code did: a fresh sort and full attribute scans per evaluation,
    and a boundary set rebuilt from the attribute list per call.
    """

    def __init__(self, record) -> None:
        self._record = record
        self.version = record.version

    def evaluate(self, user_attributes, now):
        return evaluate_policies(
            self._record.policies, self._record.attributes, user_attributes, now
        )

    def boundaries_between(self, start, end):
        bounds = set()
        for attribute in self._record.attributes:
            for bound in (attribute.stime, attribute.etime):
                if bound is not None and start < bound <= end:
                    bounds.add(bound)
        return sorted(bounds)


def _build_deployment() -> Deployment:
    deployment = Deployment(seed=11)
    # A channel with enough rights structure that policy evaluation is
    # non-trivial: several region tiers, a subscription gate, and a
    # far-future scheduled blackout contributing stime/etime
    # boundaries to every expiry-capping scan.
    deployment.add_free_channel(CHANNEL, regions=["CH", "DE", "AT", "FR", "UK"])
    deployment.policy_manager.schedule_blackout(
        CHANNEL, start=50_000.0, end=56_000.0, now=0.0
    )
    return deployment


def _legacy_manager(deployment: Deployment) -> ChannelManager:
    """A Channel Manager running the pre-PR slow paths."""
    hot = deployment.channel_manager_for(CHANNEL)
    manager = ChannelManager(
        signing_key=hot._key.without_crt(),
        farm_secret=b"legacy-farm-secret-0123456789abcdef",
        drbg=HmacDrbg(b"legacy-cm"),
        user_manager_keys=[m.public_key for m in deployment.user_managers.values()],
        ticket_lifetime=deployment.channel_ticket_lifetime,
        partition=hot.partition,
        ticket_cache_size=0,
    )
    manager.receive_channel_list(deployment.policy_manager.channel_list())
    for record in manager._channels.values():
        record.__dict__["_compiled"] = _UncompiledPlan(record)
    return manager


def _ops_per_second(fn, iters: int = ITERS, repeats: int = 3) -> float:
    """Best-of-N throughput of ``fn`` (best run suppresses scheduler noise)."""
    fn()  # warmup
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iters):
            fn()
        best = min(best, time.perf_counter() - start)
    return iters / best


def _switch2_loop(manager: ChannelManager, client, now: float):
    """One SWITCH2 issuance closure against ``manager``.

    The SWITCH1 token is minted once: challenge tokens are stateless
    MAC'd blobs valid for their whole max-age, so reusing one isolates
    the SWITCH2 handler -- the round whose throughput caps a farm.
    """
    token = manager.switch1(
        Switch1Request(user_ticket=client.user_ticket, channel_id=CHANNEL), now
    ).token
    signature = answer_challenge(token, client.private_key)
    request = Switch2Request(
        user_ticket=client.user_ticket,
        token=token,
        signature=signature,
        channel_id=CHANNEL,
    )
    return lambda: manager.switch2(request, observed_addr=client.net_addr, now=now)


def _renewal_loop(manager: ChannelManager, client, issue_now: float, renew_now: float):
    """One renewal closure; seeds the viewing log with a fresh issue."""
    expiring = _switch2_loop(manager, client, issue_now)().ticket
    token = manager.switch1(
        Switch1Request(user_ticket=client.user_ticket, expiring_ticket=expiring),
        renew_now,
    ).token
    signature = answer_challenge(token, client.private_key)
    request = Switch2Request(
        user_ticket=client.user_ticket,
        token=token,
        signature=signature,
        expiring_ticket=expiring,
    )
    return lambda: manager.switch2(
        request, observed_addr=client.net_addr, now=renew_now
    )


@pytest.fixture(scope="module")
def env():
    deployment = _build_deployment()
    client = deployment.create_client("hot@example.org", "pw", region="CH")
    client.login(now=0.0)
    return deployment, client


def test_bench_hotpath_switch2_renewal_login(env):
    deployment, client = env
    hot_cm = deployment.channel_manager_for(CHANNEL)
    legacy_cm = _legacy_manager(deployment)
    user_manager = next(iter(deployment.user_managers.values()))

    results = {}

    # --- SWITCH2 (fresh issue) ------------------------------------
    # Closures are built before each reset: the client answers the
    # challenge with its own (CRT) key during setup, and that one
    # client-side op must not pollute the manager-side counters.
    run_hot = _switch2_loop(hot_cm, client, now=0.0)
    counters.reset()
    after = _ops_per_second(run_hot)
    after_counters = counters.snapshot()
    run_legacy = _switch2_loop(legacy_cm, client, now=0.0)
    counters.reset()
    before = _ops_per_second(run_legacy)
    before_counters = counters.snapshot()
    results["switch2"] = {
        "before_ops_per_s": round(before, 1),
        "after_ops_per_s": round(after, 1),
        "speedup": round(after / before, 2),
        "after_counters": after_counters,
        "before_counters": before_counters,
    }

    # --- SWITCH2 (renewal) ----------------------------------------
    # Issue at t=0 (expiry 900), renew inside the +/-120 s window.
    after = _ops_per_second(_renewal_loop(hot_cm, client, 0.0, 850.0))
    before = _ops_per_second(_renewal_loop(legacy_cm, client, 0.0, 850.0))
    results["renewal"] = {
        "before_ops_per_s": round(before, 1),
        "after_ops_per_s": round(after, 1),
        "speedup": round(after / before, 2),
    }

    # --- LOGIN (both rounds, same manager, CRT on/off) -------------
    login_iters = max(ITERS // 10, 5)
    after = _ops_per_second(lambda: client.login(now=0.0), iters=login_iters)
    crt_key = user_manager._key
    user_manager._key = crt_key.without_crt()
    try:
        before = _ops_per_second(lambda: client.login(now=0.0), iters=login_iters)
    finally:
        user_manager._key = crt_key
    results["login"] = {
        "before_ops_per_s": round(before, 1),
        "after_ops_per_s": round(after, 1),
        "speedup": round(after / before, 2),
    }

    # --- policy evaluation micro-bench ----------------------------
    record = deployment.policy_manager.get_channel(CHANNEL)
    attrs = client.user_ticket.attributes
    compiled = record.compiled()
    after = _ops_per_second(lambda: compiled.evaluate(attrs, 0.0))
    before = _ops_per_second(
        lambda: evaluate_policies(record.policies, record.attributes, attrs, 0.0)
    )
    results["policy_eval"] = {
        "before_ops_per_s": round(before, 1),
        "after_ops_per_s": round(after, 1),
        "speedup": round(after / before, 2),
    }

    RESULT_PATH.write_text(
        json.dumps(
            {
                "benchmark": "protocol_hotpath",
                "config": {
                    "iters": ITERS,
                    "key_bits": deployment.key_bits,
                    "channel_policies": len(record.policies),
                },
                "results": results,
            },
            indent=2,
        )
        + "\n"
    )

    # The acceptance bar for this PR: CRT signing + verification
    # cache + compiled policy index must at least double manager-side
    # SWITCH2 throughput.
    assert results["switch2"]["speedup"] >= 2.0, results["switch2"]
    # The fast paths must actually have been exercised.
    assert results["switch2"]["after_counters"]["ticket_cache_hits"] > 0
    assert results["switch2"]["after_counters"]["rsa_crt_ops"] > 0
    assert results["switch2"]["before_counters"]["rsa_crt_ops"] == 0
    assert results["switch2"]["before_counters"]["ticket_cache_hits"] == 0


def test_bench_tracing_overhead_under_five_percent(env):
    """The acceptance bar for the tracing layer: spans on the SWITCH2
    hot path cost < 5% throughput.  RSA dominates each issuance, so a
    handful of dict writes per request must disappear in the noise."""
    from repro.trace.span import Tracer

    deployment, client = env
    hot_cm = deployment.channel_manager_for(CHANNEL)
    run = _switch2_loop(hot_cm, client, now=0.0)
    untraced = _ops_per_second(run)
    tracer = Tracer(max_spans=10_000_000)
    hot_cm.tracer = tracer
    try:
        traced = _ops_per_second(run)
    finally:
        hot_cm.tracer = None
    assert tracer.spans, "traced run recorded no spans"
    overhead = 1.0 - traced / untraced
    assert traced >= 0.95 * untraced, (
        f"tracing overhead {overhead:.1%} (untraced {untraced:.0f} ops/s, "
        f"traced {traced:.0f} ops/s)"
    )


def test_bench_hotpath_verification_cache_equivalence(env):
    """The cached and uncached verify paths agree on accept *and* reject."""
    deployment, client = env
    hot_cm = deployment.channel_manager_for(CHANNEL)
    legacy_cm = _legacy_manager(deployment)
    run_hot = _switch2_loop(hot_cm, client, now=0.0)
    run_legacy = _switch2_loop(legacy_cm, client, now=0.0)
    hot_ticket = run_hot().ticket
    legacy_ticket = run_legacy().ticket
    assert hot_ticket.channel_id == legacy_ticket.channel_id == CHANNEL
    assert hot_ticket.expire_time == legacy_ticket.expire_time
    assert hot_ticket.user_id == legacy_ticket.user_id

"""Robustness sweep: the Fig. 5 correlations across seeds.

The paper reports point estimates from one production week.  Our
simulated weeks are cheap, so this bench replays the week under
several seeds and checks the *distributional* version of the claim:
the server rounds' correlations stay centred on zero across seeds
while JOIN's stays positive -- i.e. the result is a property of the
architecture, not of one lucky seed.
"""

from dataclasses import replace

from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner
from repro.metrics.reporting import format_table

SEEDS = (20080623, 7, 99)


def test_bench_seed_sweep_correlations(benchmark):
    def sweep():
        rows = []
        for seed in SEEDS:
            config = replace(
                WeeklongConfig(peak_concurrent=120, n_channels=20, horizon=4 * 86400.0),
                seed=seed,
            )
            result = WeeklongRunner(config).run()
            rows.append((seed, result.correlations(min_samples=5)))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    server_rs = [
        corr[name]
        for _, corr in rows
        for name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2")
    ]
    join_rs = [corr["JOIN"] for _, corr in rows]
    # Server rounds: centred on zero (mean within noise), every sample weak.
    assert abs(sum(server_rs) / len(server_rs)) < 0.12
    assert all(abs(r) < 0.35 for r in server_rs)
    # JOIN: positive under every seed, still weak.
    assert all(0.0 < r < 0.5 for r in join_rs)
    assert sum(join_rs) / len(join_rs) > 0.05

    table = [
        (seed, *(f"{corr[n]:+.3f}" for n in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN")))
        for seed, corr in rows
    ]
    print("\nPearson r vs load, by seed")
    print(format_table(["seed", "LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2", "JOIN"], table))

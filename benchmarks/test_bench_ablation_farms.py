"""Ablation A1: stateless manager-farm scaling under a flash crowd.

Section V argues that because ticket issuance is atomic and stateless,
a logical manager scales by adding instances behind one name/keypair.
This bench drives an event-start flash crowd into farms of 1/2/4/8
servers and reports the queueing collapse.
"""

from repro.experiments.ablations import farm_scaling
from repro.metrics.reporting import format_table


def test_bench_ablation_farm_scaling(benchmark, rng):
    points = benchmark.pedantic(
        lambda: farm_scaling(rng, arrivals=8000, window=120.0, farm_sizes=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    # Improvement with farm size (monotone up to sampling noise once
    # the farm has left saturation and waits are pure service time).
    p95s = [p.p95_wait for p in points]
    for smaller, larger in zip(p95s, p95s[1:]):
        assert larger <= smaller * 1.05
    # Leaving saturation is superlinear: 1 -> 4 servers cuts p95 by far
    # more than 4x.
    assert points[0].p95_wait > points[2].p95_wait * 4
    # Queues vanish as the farm grows.
    assert points[-1].max_queue < points[0].max_queue

    rows = [
        (p.n_servers, f"{p.mean_wait * 1000:.1f}", f"{p.p95_wait * 1000:.1f}", p.max_queue)
        for p in points
    ]
    print("\nA1 — farm scaling under an 8000-request flash crowd (120 s window)")
    print(format_table(["servers", "mean wait (ms)", "p95 wait (ms)", "max queue"], rows))

"""Ablation A3: traditional playback-time licensing vs event licensing.

Section I's framing experiment: with per-file licenses acquired at
playback time, a live event's correlated arrivals force peak-load
provisioning of the License Manager.  The paper's ticket architecture
amortizes authentication ahead of the event (users are already logged
in, tickets renew continuously), leaving only channel switches in the
critical window.  This bench reports how many license/ticket servers
each architecture needs to hold a 3-second SLA over the event-start
flash crowd.
"""

from repro.experiments.ablations import traditional_comparison
from repro.metrics.reporting import format_table


def test_bench_ablation_traditional_vs_event_licensing(benchmark, rng):
    rows = benchmark.pedantic(
        lambda: traditional_comparison(rng, audiences=(1000, 5000, 20000), window=120.0),
        rounds=1,
        iterations=1,
    )

    for row in rows:
        assert row.ours_servers_for_sla <= row.traditional_servers_for_sla
    # Provisioning demand grows with audience for the baseline.
    needs = [r.traditional_servers_for_sla for r in rows]
    assert needs == sorted(needs)

    table = [
        (r.arrivals, r.traditional_servers_for_sla, r.ours_servers_for_sla)
        for r in rows
    ]
    print("\nA3 — servers needed for a 3 s SLA at event start")
    print(
        format_table(
            ["audience", "traditional DRM (license at playback)", "ours (event licensing)"],
            table,
        )
    )

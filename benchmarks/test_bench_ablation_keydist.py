"""Ablation A2: P2P push key distribution vs centralized key server.

The paper's design distributes rotating content keys through the
overlay ("push-based", Section V); related work centralizes key
distribution (ref [18]).  This bench sweeps audience size and shows
the structural difference: central load grows linearly and its waits
blow up, while the push's infrastructure cost is constant and its
propagation grows only with tree depth (log N).
"""

from repro.experiments.ablations import keydist_comparison
from repro.metrics.reporting import format_table


def test_bench_ablation_keydist(benchmark, rng):
    rows = benchmark.pedantic(
        lambda: keydist_comparison(
            rng, audiences=(100, 1000, 10000, 60000), central_servers=4
        ),
        rounds=1,
        iterations=1,
    )

    # Central: linear request load per re-key.
    assert [r.central_requests_per_rekey for r in rows] == [100, 1000, 10000, 60000]
    # Push: infrastructure messages constant, depth logarithmic.
    assert len({r.push_server_messages for r in rows}) == 1
    assert rows[-1].push_depth <= rows[0].push_depth + 5
    # Who wins at the paper's peak scale (60k concurrent): the push
    # propagates in well under the central server's p99 wait.
    assert rows[-1].push_propagation < rows[-1].central_p99_wait

    table = [
        (
            r.clients,
            r.central_requests_per_rekey,
            f"{r.central_p99_wait:.3f}",
            r.push_server_messages,
            r.push_depth,
            f"{r.push_propagation:.3f}",
        )
        for r in rows
    ]
    print("\nA2 — per-re-key cost: central fetch (4 servers) vs P2P push")
    print(
        format_table(
            [
                "audience",
                "central req/rekey",
                "central p99 wait (s)",
                "push infra msgs",
                "push depth",
                "push propagation (s)",
            ],
            table,
        )
    )

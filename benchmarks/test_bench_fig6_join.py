"""Fig. 6(c): CDF of JOIN latencies, peak vs off-peak hours.

JOIN is the round with real load coupling (retries at busy peers), so
this is the strongest version of the "virtually identical" claim: even
here the peak and off-peak CDFs stay within a small KS distance.
"""

from repro.experiments import fig6


def test_bench_fig6c_join_cdf(benchmark, week_result):
    comparisons = benchmark(lambda: fig6.panel(week_result, "c-join"))
    (comparison,) = comparisons
    assert comparison.peak_count > 1000
    # Identical-looking CDFs despite the retry coupling; the paper's
    # figure shows the same.  Slightly looser bound than the server
    # rounds' because the coupling is real.
    assert comparison.ks < 0.08
    # The gap, where it exists, sits in the upper tail, not the body:
    median_gap = next(abs(p - o) for q, p, o in comparison.quantiles if q == 0.5)
    assert median_gap < 0.03

    print("\n" + fig6.render_panel(week_result, "c-join"))

"""Shardscale: aggregate SWITCH2/RENEWAL capacity as farms grow 1 -> 16.

The sharded manager tier only earns its complexity if adding farms
adds capacity.  This benchmark builds the same Zattoo-shaped
population (Zipf channel popularity over a fixed audience) against
deployments of 1, 2, 4, 8 and 16 Authentication Domains / Channel
Listing Partitions, then measures the two steady-state control-plane
operations of Section IV-D through the sharded request path:

* **SWITCH2** -- clients switch channels; each op lands on the Channel
  Manager farm owning the target channel (channel ring placement);
* **RENEWAL** -- clients renew their Channel Ticket inside the renewal
  window; the serving CM routes the one-viewing-location check to the
  viewing partition owning the user.

Farms are independent machines in production, so aggregate capacity is
the *sum of per-shard service rates measured independently* on this
single thread: for each shard, its share of the workload is timed
alone and contributes ``ops / elapsed``.  Ideal scaling at F farms is
``F x`` the single-farm aggregate; the acceptance bound is >=0.75x
ideal at 16 farms (per-op cost is O(1) in shard count -- dict lookups
plus an O(log vnodes) ring probe -- so anything below that indicates a
serialization bug in the placement layer).

``SHARDSCALE_BENCH_USERS`` scales the audience and
``SHARDSCALE_BENCH_ITERS`` the switch rounds; CI smoke runs use small
values and assert a loose sanity bound (tiny per-shard batches are too
noisy for the strict ratio).  ``SHARDSCALE_BENCH_WORKERS`` puts the
crypto plane behind a :class:`~repro.parallel.pool.CryptoPool`
(``Deployment.enable_multicore``) so farm scaling is measured with
the real multi-core signing path: ``auto`` (the default) sizes the
pool to the machine and skips pooling entirely on single-core boxes,
where fork+IPC overhead would only add noise; ``0`` forces the
in-process path.  Results go to ``BENCH_shardscale.json`` at the
repo root.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import time
from pathlib import Path
from typing import Dict, List, Tuple

from repro.deployment import Deployment

USERS = int(os.environ.get("SHARDSCALE_BENCH_USERS", "48"))
SWITCH_ROUNDS = int(os.environ.get("SHARDSCALE_BENCH_ITERS", "6"))


def _resolve_workers() -> int:
    raw = os.environ.get("SHARDSCALE_BENCH_WORKERS", "auto")
    if raw == "auto":
        cores = multiprocessing.cpu_count()
        return cores if cores >= 2 else 0
    return max(0, int(raw))


WORKERS = _resolve_workers()
#: Renewal rounds are bounded by the 1800 s user-ticket lifetime:
#: renewals at t=800 and t=1600 both fall inside the window of the
#: previous ticket and before the User Ticket expires.
RENEW_ROUNDS = 2
FARMS = (1, 2, 4, 8, 16)
CHANNELS = 64
ZIPF_S = 1.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_shardscale.json"
FULL_RUN = USERS >= 48


def _zipf_picker(rng: random.Random, channels: List[str]):
    """Zattoo-shaped popularity: rank-r channel drawn with weight 1/r^s."""
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(len(channels))]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for weight in weights:
        acc += weight / total
        cumulative.append(acc)

    def pick() -> str:
        point = rng.random()
        for index, bound in enumerate(cumulative):
            if point <= bound:
                return channels[index]
        return channels[-1]

    return pick


def _build(farms: int) -> Tuple[Deployment, List[str], list]:
    partitions = tuple(f"part-{i}" for i in range(farms))
    deployment = Deployment(seed=20080623, n_domains=farms, partitions=partitions)
    runtime = deployment.enable_sharding()
    if WORKERS:
        deployment.enable_multicore(workers=WORKERS)

    channels = [f"channel-{i:03d}" for i in range(CHANNELS)]
    for channel_id in channels:
        deployment.add_free_channel(channel_id, regions=["CH"])
    # Every farm must carry live channels for its service rate to be
    # measurable; top up any partition the ring left empty (possible
    # at 16 farms x 64 channels) with an explicitly placed channel.
    owned = set(runtime.channel_directory.ring.load(channels))
    for name in partitions:
        if runtime.channel_directory.ring.load(channels).get(name, 0) == 0:
            extra = f"channel-fill-{name}"
            deployment.add_free_channel(extra, regions=["CH"], partition=name)
            channels.append(extra)
    del owned

    clients = []
    for i in range(USERS):
        client = deployment.create_client(
            f"viewer{i:04d}@example.org", f"pw-{i}", region="CH"
        )
        client.login(0.0)
        clients.append(client)
    return deployment, channels, clients


def _owner(runtime, channel_id: str) -> str:
    return runtime.channel_directory.ring.node_for(channel_id)


def _channels_of(runtime, channels: List[str], partition: str) -> List[str]:
    return [c for c in channels if _owner(runtime, c) == partition]


def _measure(farms: int) -> Dict[str, dict]:
    deployment, channels, clients = _build(farms)
    try:
        return _measure_ops(deployment, channels, clients, farms)
    finally:
        if deployment.crypto_pool is not None:
            deployment.crypto_pool.close()


def _measure_ops(
    deployment: Deployment, channels: List[str], clients: list, farms: int
) -> Dict[str, dict]:
    runtime = deployment.sharding
    partitions = sorted(deployment.channel_managers)
    rng = random.Random(90125 + farms)
    pick = _zipf_picker(rng, channels)

    # The first `farms` clients are coverage clients: each cycles the
    # channels of one partition, guaranteeing every farm serves both
    # op types.  The rest follow the Zipf audience shape.
    assignments: Dict[str, List[Tuple[object, str]]] = {p: [] for p in partitions}
    for round_no in range(SWITCH_ROUNDS):
        for index, client in enumerate(clients):
            if index < farms:
                home = partitions[index]
                mine = _channels_of(runtime, channels, home)
                channel_id = mine[round_no % len(mine)]
            else:
                channel_id = pick()
            assignments[_owner(runtime, channel_id)].append((client, channel_id))

    for client in clients:  # warmup: caches hot, a current channel set
        client.switch_channel(channels[0], 0.0)

    switch_rates: Dict[str, float] = {}
    for partition in partitions:
        ops = assignments[partition]
        start = time.perf_counter()
        for client, channel_id in ops:
            client.switch_channel(channel_id, 0.0)
        elapsed = time.perf_counter() - start
        switch_rates[partition] = len(ops) / elapsed

    # Renewals go to the farm serving each client's *current* channel;
    # the coverage clients' last switch keeps every farm populated.
    renew_groups: Dict[str, List[object]] = {p: [] for p in partitions}
    for client in clients:
        renew_groups[_owner(runtime, client.channel_ticket.channel_id)].append(client)
    renew_rates: Dict[str, float] = {}
    for partition in partitions:
        group = renew_groups[partition]
        count = 0
        start = time.perf_counter()
        for round_no in range(RENEW_ROUNDS):
            now = 800.0 + 800.0 * round_no
            for client in group:
                client.renew_channel_ticket(now)
                count += 1
        elapsed = time.perf_counter() - start
        renew_rates[partition] = count / elapsed if count else 0.0

    return {
        "switch": {
            "ops": sum(len(v) for v in assignments.values()),
            "per_shard_ops_per_s": {p: round(r, 1) for p, r in switch_rates.items()},
            "aggregate_ops_per_s": round(sum(switch_rates.values()), 1),
        },
        "renewal": {
            "ops": sum(len(g) for g in renew_groups.values()) * RENEW_ROUNDS,
            "per_shard_ops_per_s": {p: round(r, 1) for p, r in renew_rates.items()},
            "aggregate_ops_per_s": round(sum(renew_rates.values()), 1),
        },
    }


def test_bench_shardscale_switch_renewal_scaling():
    assert USERS >= max(FARMS), "need at least one coverage client per farm"
    results: Dict[str, dict] = {}
    for farms in FARMS:
        results[str(farms)] = _measure(farms)

    base_switch = results["1"]["switch"]["aggregate_ops_per_s"]
    base_renew = results["1"]["renewal"]["aggregate_ops_per_s"]
    for farms in FARMS:
        entry = results[str(farms)]
        entry["switch"]["efficiency_vs_ideal"] = round(
            entry["switch"]["aggregate_ops_per_s"] / (farms * base_switch), 3
        )
        entry["renewal"]["efficiency_vs_ideal"] = round(
            entry["renewal"]["aggregate_ops_per_s"] / (farms * base_renew), 3
        )

    bound = 0.75 if FULL_RUN else 0.35
    payload = {
        "benchmark": "shardscale",
        "config": {
            "users": USERS,
            "switch_rounds": SWITCH_ROUNDS,
            "renew_rounds": RENEW_ROUNDS,
            "channels": CHANNELS,
            "zipf_s": ZIPF_S,
            "farms": list(FARMS),
            "full_run": FULL_RUN,
            "crypto_pool_workers": WORKERS,
            "machine_cores": multiprocessing.cpu_count(),
        },
        "results": results,
        "acceptance": {
            "min_efficiency_vs_ideal_at_16": bound,
            "switch_efficiency_at_16": results["16"]["switch"]["efficiency_vs_ideal"],
            "renewal_efficiency_at_16": results["16"]["renewal"]["efficiency_vs_ideal"],
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    assert results["16"]["switch"]["efficiency_vs_ideal"] >= bound, payload["acceptance"]
    assert results["16"]["renewal"]["efficiency_vs_ideal"] >= bound, payload["acceptance"]

"""Ablation A6: region-aware vs uniform peer selection.

The Channel Manager's peer list is the only lever the infrastructure
has over overlay topology.  This bench populates one channel with
viewers across two regions and compares the default uniform sampler
against :class:`~repro.p2p.selection.RegionAwarePeerSampler`: the
locality fraction of returned lists, and the implied expected join
RTT under the simulator's same-/cross-region path model.
"""

import random

from repro.deployment import Deployment
from repro.metrics.reporting import format_table
from repro.p2p.selection import RegionAwarePeerSampler
from repro.sim.network import peer_rtt


def _populate(seed=33, per_region=8):
    deployment = Deployment(seed=seed, source_capacity=64)
    deployment.add_free_channel("intl", regions=["CH", "DE"])
    for region in ("CH", "DE"):
        for i in range(per_region):
            client = deployment.create_client(
                f"{region.lower()}{i}@example.org", "pw", region=region
            )
            client.login(now=0.0)
            deployment.watch(client, "intl", now=0.0, capacity=8)
    return deployment


def _mean_locality(sampler, deployment, rng, samples=40):
    total = n = 0.0
    for _ in range(int(samples)):
        addr = deployment.geo.random_address("CH", rng)
        result = sampler("intl", addr, 6)
        if not result:
            continue
        non_source = [d for d in result if not d.peer_id.startswith("source")]
        if not non_source:
            continue
        local = sum(1 for d in non_source if d.region == "CH")
        total += local / len(non_source)
        n += 1
    return total / max(1, n)


def test_bench_ablation_peer_locality(benchmark):
    deployment = _populate()
    rng = random.Random(101)
    uniform = deployment.overlays["intl"].sample_peers
    aware = RegionAwarePeerSampler(
        deployment.overlays, deployment.geo, random.Random(7)
    )

    def measure():
        return (
            _mean_locality(uniform, deployment, random.Random(1)),
            _mean_locality(aware, deployment, random.Random(1)),
        )

    uniform_locality, aware_locality = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert aware_locality > uniform_locality

    # Expected first-attempt join RTT under the path model.
    rtt_rng = random.Random(5)
    same = sum(peer_rtt(rtt_rng, True) for _ in range(3000)) / 3000
    cross = sum(peer_rtt(rtt_rng, False) for _ in range(3000)) / 3000

    def expected_rtt(locality):
        return locality * same + (1 - locality) * cross

    rows = [
        ("uniform", f"{uniform_locality:.2f}", f"{expected_rtt(uniform_locality) * 1000:.0f}"),
        ("region-aware", f"{aware_locality:.2f}", f"{expected_rtt(aware_locality) * 1000:.0f}"),
    ]
    print("\nA6 — peer selection locality (CH requester, CH/DE audience)")
    print(format_table(["sampler", "same-region fraction", "expected join RTT (ms)"], rows))
    assert expected_rtt(aware_locality) < expected_rtt(uniform_locality)

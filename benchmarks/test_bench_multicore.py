"""Multicore: sharded-storm scaling + process-pool crypto, honestly.

Two claims to earn:

* **The parallel storm scales.**  Shards only interact through the
  window-synchronized bridge, so the parallel wall-clock floor is the
  busiest single shard plus coordination.  Following the shardscale
  methodology, per-shard busy time is measured on the sequential
  runner (each shard's ``run_window`` timed alone) and the projected
  N-worker wall is the busiest worker's share under the round-robin
  assignment; projected speedup is sequential-busy-total over that.
  The acceptance bound -- >=4x aggregate throughput on 8 workers at 8
  shards -- is asserted on the projection in full runs, and on the
  *measured* wall only when the machine actually has >= 8 cores (the
  ``cores`` field records what this run really had; CI containers with
  one core cannot measure an 8-way speedup and do not pretend to).
* **Parallelism changes nothing.**  The workers=2 run must produce the
  byte-identical transcript to the sequential run, every time, and two
  sequential runs must agree byte-for-byte.  These are asserted
  unconditionally -- smoke and full runs alike.

The crypto-pool section records pooled vs inline sealing rates for the
same batch work (equality of output bytes is asserted; relative speed
is reported, not asserted -- on a 1-core container the pool's IPC is
pure overhead, and the numbers should say so).

``MULTICORE_BENCH_ITERS`` scales viewers per shard (full run at >= 4);
``MULTICORE_BENCH_SHARDS`` the shard count.  Results go to
``BENCH_multicore.json`` at the repo root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List

from repro.crypto.stream import SymmetricKey
from repro.parallel import CryptoPool, ShardStormConfig, run_sharded_storm

ITERS = int(os.environ.get("MULTICORE_BENCH_ITERS", "4"))
SHARDS = int(os.environ.get("MULTICORE_BENCH_SHARDS", "8"))
HORIZON = 150.0
TARGET_WORKERS = 8
SPEEDUP_BOUND = 4.0
RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multicore.json"
FULL_RUN = ITERS >= 4 and SHARDS >= 8
CORES = os.cpu_count() or 1


def _projected_wall(busy: List[float], workers: int) -> float:
    """Round-robin the measured per-shard busy times onto workers."""
    shares = [0.0] * workers
    for shard, cost in enumerate(busy):
        shares[shard % workers] += cost
    return max(shares)


def _storm_section(config: ShardStormConfig) -> Dict:
    t0 = time.perf_counter()
    sequential = run_sharded_storm(config, workers=1)
    sequential_wall = time.perf_counter() - t0
    again = run_sharded_storm(config, workers=1)
    t0 = time.perf_counter()
    parallel = run_sharded_storm(config, workers=2)
    parallel_wall = time.perf_counter() - t0

    assert sequential.errors == [], sequential.errors[:5]
    assert again.transcript == sequential.transcript, \
        "two same-seed sequential runs disagree"
    assert parallel.transcript == sequential.transcript, \
        "parallel transcript differs from sequential"

    busy = sequential.per_shard_busy
    busy_total = sum(busy)
    projected = {
        str(w): round(busy_total / max(1e-9, _projected_wall(busy, w)), 2)
        for w in (2, 4, TARGET_WORKERS)
    }
    return {
        "shards": config.shards,
        "clients_per_shard": config.clients_per_shard,
        "horizon_s": config.horizon,
        "operations": sequential.operations,
        "bridge_messages": sequential.bridge_messages,
        "transcript_lines": len(sequential.transcript),
        "sequential_wall_s": round(sequential_wall, 3),
        "parallel2_wall_s": round(parallel_wall, 3),
        "parallel2_workers_used": parallel.workers,
        "per_shard_busy_s": [round(b, 4) for b in busy],
        "busy_total_s": round(busy_total, 4),
        "projected_speedup": projected,
        "measured_speedup_2_workers": round(
            sequential_wall / max(1e-9, parallel_wall), 2
        ),
        "transcripts_identical": True,
        "double_run_identical": True,
    }


def _pool_section() -> Dict:
    key = SymmetricKey(b"b" * 16)
    frames = [bytes([i % 251]) * 1400 for i in range(256 * ITERS)]
    nonces = list(range(len(frames)))

    start = time.perf_counter()
    inline = key.encrypt_many(frames, nonces, aad=b"bench")
    inline_s = time.perf_counter() - start

    with CryptoPool(workers=min(CORES, 4), min_chunk=32) as pool:
        start = time.perf_counter()
        pooled = key.encrypt_many(frames, nonces, aad=b"bench") if not pool.pooled \
            else pool.encrypt_many(key, frames, nonces, aad=b"bench")
        pooled_s = time.perf_counter() - start
        assert pooled == inline, "pooled sealing changed the bytes"
        stats = pool.stats.snapshot()

    mb = sum(len(f) for f in frames) / 1e6
    return {
        "batch_frames": len(frames),
        "batch_mb": round(mb, 2),
        "inline_mb_per_s": round(mb / max(1e-9, inline_s), 2),
        "pooled_mb_per_s": round(mb / max(1e-9, pooled_s), 2),
        "pool": stats,
        "outputs_identical": True,
    }


def test_bench_multicore():
    config = ShardStormConfig(
        shards=SHARDS, clients_per_shard=ITERS, seed=29, horizon=HORIZON
    )
    storm = _storm_section(config)
    pool = _pool_section()

    projected_at_target = storm["projected_speedup"][str(TARGET_WORKERS)]
    measured_ok = CORES >= TARGET_WORKERS and FULL_RUN
    payload = {
        "benchmark": "multicore",
        "config": {
            "iters": ITERS,
            "shards": SHARDS,
            "target_workers": TARGET_WORKERS,
            "full_run": FULL_RUN,
            "cores": CORES,
        },
        "storm": storm,
        "crypto_pool": pool,
        "acceptance": {
            "speedup_bound": SPEEDUP_BOUND,
            "projected_speedup_at_target": projected_at_target,
            "projection_asserted": FULL_RUN,
            "measured_wall_asserted": measured_ok,
            "byte_equality_asserted": True,
        },
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    if FULL_RUN:
        assert projected_at_target >= SPEEDUP_BOUND, payload["acceptance"]
    if measured_ok:
        # Only a machine with >= TARGET_WORKERS cores can measure the
        # bound directly; there, demand it of the real 8-worker wall.
        t0 = time.perf_counter()
        wide = run_sharded_storm(config, workers=TARGET_WORKERS)
        wide_wall = time.perf_counter() - t0
        assert wide.transcript[:1] != [] and len(wide.transcript) == \
            storm["transcript_lines"]
        measured = storm["sequential_wall_s"] / max(1e-9, wide_wall)
        payload["acceptance"]["measured_speedup_at_target"] = round(measured, 2)
        RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        assert measured >= SPEEDUP_BOUND * 0.75, payload["acceptance"]

"""Fig. 5, hardened: flat latency must survive live-event flash crowds.

The production week behind Fig. 5 contained real live events (the
paper's whole motivation); the baseline bench models the diurnal curve
only.  This bench layers scheduled prime-time events -- each a flash
crowd of extra sessions -- onto the week and re-checks the claims:
latency stays flat and decorrelated even at the spikes, because the
flash load still lands on stateless, under-saturated farms.
"""

from repro.experiments import fig5
from repro.experiments.common import WeeklongConfig
from repro.experiments.weeklong import WeeklongRunner
from repro.metrics.stats import median


def test_bench_fig5_with_live_events(benchmark):
    config = WeeklongConfig(
        peak_concurrent=150,
        n_channels=24,
        horizon=5 * 86400.0,
        live_events=5,
        event_audience=120,
    )
    result = benchmark.pedantic(
        lambda: WeeklongRunner(config).run(), rounds=1, iterations=1
    )

    # The spikes exist: evening concurrency dwarfs the afternoon's.
    evening = result.trace.concurrent_at(20.5 * 3600.0)
    afternoon = result.trace.concurrent_at(15.0 * 3600.0)
    assert evening > afternoon * 1.5

    # The correlations stay weak anyway.
    for round_name in ("LOGIN1", "LOGIN2", "SWITCH1", "SWITCH2"):
        r = result.correlation(round_name, min_samples=5)
        assert abs(r) < 0.35, (round_name, r)
    join_r = result.correlation("JOIN", min_samples=5)
    assert 0.0 < join_r < 0.5

    # And the farms never approached saturation during the events.
    assert result.um_utilization < 0.5
    assert all(u < 0.5 for u in result.cm_utilizations)

    print(f"\nevent-hardened week: evening concurrency {evening} vs "
          f"afternoon {afternoon}; "
          f"median SWITCH2 {median(result.collector.latencies('SWITCH2')):.3f}s")
    print(fig5.paper_comparison(result))
